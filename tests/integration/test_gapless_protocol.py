"""Integration tests for the Gapless ring protocol (Section 4.1)."""

from repro.core.home import HomeConfig
from tests.integration.conftest import five_process_home

EVENT_KINDS = {"gapless_fwd", "gap_fwd", "nbcast", "rbcast"}


def event_messages(home):
    return [e for e in home.trace.of_kind("net_send") if e["kind"] in EVENT_KINDS]


def test_failure_free_ring_costs_n_messages(make_home):
    home, collected = make_home(receiving=["p1"])
    home.run_until(1.0)
    home.sensor("s1").emit("open")
    home.run_until(3.0)
    messages = event_messages(home)
    assert len(messages) == 5
    assert all(m["kind"] == "gapless_fwd" for m in messages)
    assert collected.values == ["open"]


def test_ring_cost_constant_in_receiving_processes(make_home):
    for receivers in (["p1"], ["p1", "p2", "p3"], [f"p{i}" for i in range(5)]):
        home, collected = five_process_home(receiving=receivers)
        home.run_until(1.0)
        home.sensor("s1").emit("x")
        home.run_until(3.0)
        assert len(event_messages(home)) == 5, receivers
        assert len(collected) == 1, receivers


def test_every_process_journals_every_event(make_home):
    home, _ = make_home(receiving=["p2"])
    home.run_until(1.0)
    for _ in range(10):
        home.sensor("s1").emit("x")
    home.run_until(5.0)
    for name, process in home.processes.items():
        assert process.store.total_events() == 10, name


def test_duplicate_multicast_receipts_deduplicated(make_home):
    home, collected = make_home(receiving=[f"p{i}" for i in range(5)])
    home.run_until(1.0)
    home.sensor("s1").emit("only-once")
    home.run_until(3.0)
    assert collected.values == ["only-once"]


def test_event_survives_forwarder_crash_mid_ring(make_home):
    """Events replicated before a crash still reach the app."""
    home, collected = make_home(receiving=["p1"])
    home.run_until(1.0)
    sensor = home.sensor("s1")
    sensor.start_periodic(10.0)
    home.run_until(10.0)
    # Crash an intermediate ring member; the view change re-routes the ring
    # around it and successor sync back-fills anything stuck behind it.
    home.crash_process("p3")
    home.run_until(30.0)
    emitted = sensor.events_emitted
    distinct = {e.seq for e in collected.events}
    assert len(distinct) >= emitted - 1  # at most the in-flight one pending


def test_sync_backfills_recovered_process(make_home):
    home, _ = make_home(receiving=["p1"])
    home.run_until(1.0)
    home.crash_process("p4")
    sensor = home.sensor("s1")
    sensor.start_periodic(10.0)
    home.run_until(20.0)
    assert home.processes["p4"].store.total_events() == 0
    home.recover_process("p4")
    home.run_until(40.0)
    # After recovery the ring sync catches p4 up on everything it missed.
    emitted = sensor.events_emitted
    assert home.processes["p4"].store.total_events() >= emitted - 2


def test_fallback_broadcast_disabled_ablation():
    config = HomeConfig(seed=7)
    config.gapless_options.fallback_enabled = False
    home, collected = five_process_home(receiving=["p1"], config=config)
    home.run_until(1.0)
    home.sensor("s1").emit("x")
    home.run_until(3.0)
    assert collected.values == ["x"]
    assert home.trace.count("rbcast_origin") == 0


def test_post_ingest_guarantee_under_heavy_link_loss(make_home):
    """Every event that reached at least one process must reach the app."""
    home, collected = make_home(
        receiving=[f"p{i}" for i in range(5)], loss_rate=0.4, seed=3
    )
    home.run_until(1.0)
    sensor = home.sensor("s1")
    sensor.start_periodic(10.0)
    home.run_until(30.0)
    ingested = {e["seq"] for e in home.trace.of_kind("ingest")}
    processed = {e.seq for e in collected.events}
    assert ingested <= processed | set()  # post-ingest: ingested => delivered
