"""Crash-recovery semantics of the process runtime (Section 3.1)."""


def test_crashed_process_sends_and_receives_nothing(make_home):
    home, _ = make_home(receiving=["p1"])
    home.run_until(2.0)
    home.crash_process("p2")
    sent_before = len([e for e in home.trace.of_kind("net_send")
                       if e["src"] == "p2"])
    home.run_until(10.0)
    sent_after = len([e for e in home.trace.of_kind("net_send")
                      if e["src"] == "p2"])
    assert sent_after == sent_before
    # Messages addressed to it are dropped at delivery.
    drops = [e for e in home.trace.of_kind("net_drop") if e["dst"] == "p2"]
    assert drops


def test_timers_from_old_incarnation_do_not_fire(make_home):
    home, _ = make_home(receiving=["p1"])
    home.run_until(2.0)
    process = home.processes["p2"]
    fired = []
    process.schedule(5.0, fired.append, "old-incarnation")
    home.crash_process("p2")
    home.run_until(4.0)
    home.recover_process("p2")
    home.run_until(12.0)
    assert fired == [], "a pre-crash timer fired after recovery"


def test_double_crash_and_double_recover_raise_fault_error(make_home):
    import pytest

    from repro.sim.faults import FaultError

    home, _ = make_home(receiving=["p1"])
    home.run_until(1.0)
    process = home.processes["p3"]
    home.crash_process("p3")
    with pytest.raises(FaultError, match="already crashed"):
        home.crash_process("p3")
    assert not process.alive
    home.recover_process("p3")
    incarnation_once = process._incarnation
    with pytest.raises(FaultError, match="is live"):
        home.recover_process("p3")
    assert process._incarnation == incarnation_once
    assert process.alive
    # The runtime's own crash()/recover() stay idempotent; only the Home
    # fault-injection surface validates.
    process.crash()
    process.crash()
    process.recover()
    process.recover()
    assert process.alive


def test_event_journal_survives_crash(make_home):
    home, _ = make_home(receiving=[f"p{i}" for i in range(5)])
    home.run_until(1.0)
    sensor = home.sensor("s1")
    for _ in range(5):
        sensor.emit(True)
    home.run_until(3.0)
    before = home.processes["p2"].store.total_events()
    assert before == 5
    home.crash_process("p2")
    home.run_until(8.0)
    home.recover_process("p2")
    assert home.processes["p2"].store.total_events() == before


def test_soft_state_is_rebuilt_fresh_on_recovery(make_home):
    home, _ = make_home(receiving=["p1"])
    home.run_until(2.0)
    process = home.processes["p1"]
    old_delivery = process.delivery
    old_heartbeat = process.heartbeat
    home.crash_process("p1")
    home.run_until(6.0)
    home.recover_process("p1")
    assert process.delivery is not old_delivery
    assert process.heartbeat is not old_heartbeat


def test_radio_events_ignored_while_crashed(make_home):
    home, collected = make_home(receiving=["p1"])
    home.run_until(1.0)
    home.crash_process("p1")  # the only process hearing the sensor
    home.run_for(0.5)
    home.sensor("s1").emit("lost-forever")
    home.run_until(10.0)
    # Nobody ingested: even Gapless cannot deliver a never-received event.
    assert home.trace.count("ingest") == 0
    assert collected.events == []


def test_local_clock_skew_is_visible(make_home):
    from repro.core.home import Home
    home = Home(seed=1)
    home.add_process("p0", clock_skew=0.5)
    home.add_process("p1")
    home.start()
    home.run_until(10.0)
    assert home.processes["p0"].local_time() - 10.0 == 0.5
    assert home.processes["p1"].local_time() == 10.0
