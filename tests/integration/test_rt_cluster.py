"""Integration tests for the asyncio TCP runtime (real localhost sockets)."""

import asyncio

import pytest

from repro.core.delivery import GAPLESS, PollingPolicy, PollMode
from repro.core.events import Event
from repro.core.graph import App
from repro.core.operators import Operator
from repro.core.windows import CountWindow, TimeWindow
from repro.rt import LocalCluster


def run(coro):
    return asyncio.run(coro)


def door_light_app() -> App:
    op = Operator(
        "TL",
        on_window=lambda ctx, c: ctx.actuate("light1", "set",
                                             bool(c.all_values()[-1])),
    )
    op.add_sensor("door1", GAPLESS, CountWindow(1))
    op.add_actuator("light1", GAPLESS)
    return App("door-light", op)


def make_cluster(**kwargs) -> LocalCluster:
    cluster = LocalCluster(**kwargs)
    for name in ("hub", "tv", "fridge"):
        cluster.add_process(name)
    cluster.add_push_sensor("door1", receivers=["tv", "fridge"])
    cluster.add_actuator("light1", hosts=["hub"])
    cluster.deploy(door_light_app())
    return cluster


def test_event_to_actuation_over_tcp():
    async def scenario():
        cluster = make_cluster()
        async with cluster:
            await cluster.settle(0.3)
            cluster.emit("door1", True)
            await cluster.settle(0.5)
            hub = cluster.node("hub")
            assert hub.actuations, "the command must reach hub's actuator"
            assert hub.actuations[0].value is True

    run(scenario())


def test_event_journaled_on_every_node():
    async def scenario():
        cluster = make_cluster()
        async with cluster:
            await cluster.settle(0.3)
            for _ in range(5):
                cluster.emit("door1", True)
            await cluster.settle(0.5)
            for name, node in cluster.nodes.items():
                assert node.store.total_events() == 5, name

    run(scenario())


def test_failover_over_tcp():
    async def scenario():
        cluster = make_cluster()
        async with cluster:
            await cluster.settle(0.3)
            active = [n for n, node in cluster.nodes.items()
                      if node.execution.runtimes["door-light"].active]
            assert active == ["tv"]  # tv hosts the sensor: placement winner
            await cluster.crash("tv")
            await cluster.settle(1.2)  # > failure_detection_s
            cluster.emit("door1", False)
            await cluster.settle(0.5)
            hub = cluster.node("hub")
            issued_by = {c.issued_by for c in hub.actuations}
            assert any(by != "door-light@tv" for by in issued_by)

    run(scenario())


def test_poll_based_sensor_over_tcp():
    async def scenario():
        polls = []

        def thermometer(sensor: str, respond):
            polls.append(sensor)
            respond(Event(sensor_id=sensor, seq=len(polls),
                          emitted_at=asyncio.get_event_loop().time(),
                          value=21.5, size_bytes=4))

        deliveries = []
        op = Operator("Mon", on_window=lambda ctx, c: deliveries.extend(
            c.all_values()))
        op.add_sensor("temp1", GAPLESS, TimeWindow(0.5),
                      polling=PollingPolicy(epoch_s=0.5,
                                            mode=PollMode.COORDINATED))
        app = App("monitor", op)

        cluster = LocalCluster()
        for name in ("hub", "tv"):
            cluster.add_process(name)
        cluster.add_poll_sensor("temp1", thermometer, service_time=0.05,
                                default_epoch=0.5)
        cluster.deploy(app)
        async with cluster:
            await cluster.settle(2.0)
        assert len(polls) >= 3
        assert deliveries and all(v == 21.5 for v in deliveries)
        # Coordinated polling: roughly one poll per 0.5 s epoch.
        assert len(polls) <= 8

    run(scenario())


def test_cluster_validates_deployment():
    async def scenario():
        cluster = LocalCluster()
        cluster.add_process("hub")
        cluster.deploy(door_light_app())  # needs door1/light1: undeclared
        with pytest.raises(ValueError):
            await cluster.start()
        await cluster.stop()

    run(scenario())
