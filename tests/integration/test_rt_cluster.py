"""Integration tests for the asyncio TCP runtime (real localhost sockets).

Waits are deadline-based (``wait_for`` / ``quiesce``), never fixed sleeps:
each test polls for the condition it actually needs and fails loudly on a
generous timeout instead of flaking on a slow CI box.
"""

import asyncio

import pytest

from repro.core.delivery import GAPLESS, PollingPolicy, PollMode
from repro.core.events import Event
from repro.core.graph import App
from repro.core.operators import Operator
from repro.core.windows import CountWindow, TimeWindow
from repro.rt import LocalCluster


def run(coro):
    return asyncio.run(coro)


async def converged(cluster: LocalCluster) -> None:
    """Wait until every live node's membership view covers the live set."""
    live = {name for name, node in cluster.nodes.items() if node.alive}

    def views_full():
        return all(
            set(node.heartbeat.view.members) >= live
            for name, node in cluster.nodes.items()
            if node.alive
        )

    await cluster.wait_for(views_full, timeout=5.0)


def door_light_app() -> App:
    op = Operator(
        "TL",
        on_window=lambda ctx, c: ctx.actuate("light1", "set",
                                             bool(c.all_values()[-1])),
    )
    op.add_sensor("door1", GAPLESS, CountWindow(1))
    op.add_actuator("light1", GAPLESS)
    return App("door-light", op)


def make_cluster(**kwargs) -> LocalCluster:
    cluster = LocalCluster(**kwargs)
    for name in ("hub", "tv", "fridge"):
        cluster.add_process(name)
    cluster.add_push_sensor("door1", receivers=["tv", "fridge"])
    cluster.add_actuator("light1", hosts=["hub"])
    cluster.deploy(door_light_app())
    return cluster


def test_event_to_actuation_over_tcp():
    async def scenario():
        cluster = make_cluster()
        async with cluster:
            await converged(cluster)
            cluster.emit("door1", True)
            hub = cluster.node("hub")
            await cluster.wait_for(lambda: hub.actuations,
                                   timeout=5.0)
            assert hub.actuations[0].value is True

    run(scenario())


def test_event_journaled_on_every_node():
    async def scenario():
        cluster = make_cluster()
        async with cluster:
            await converged(cluster)
            for _ in range(5):
                cluster.emit("door1", True)
            await cluster.wait_for(
                lambda: all(node.store.total_events() == 5
                            for node in cluster.nodes.values()),
                timeout=5.0,
            )

    run(scenario())


def test_failover_over_tcp():
    async def scenario():
        cluster = make_cluster()
        async with cluster:
            await converged(cluster)
            active = [n for n, node in cluster.nodes.items()
                      if node.execution.runtimes["door-light"].active]
            assert active == ["tv"]  # tv hosts the sensor: placement winner
            await cluster.crash("tv")
            # Survivors must detect the death (bounded by detection time),
            # then a new active must take over and route the next command.
            await cluster.wait_for(
                lambda: all("tv" not in node.heartbeat.view.members
                            for node in cluster.nodes.values() if node.alive),
                timeout=5.0,
            )
            cluster.emit("door1", False)
            hub = cluster.node("hub")
            await cluster.wait_for(
                lambda: any(c.issued_by != "door-light@tv"
                            for c in hub.actuations),
                timeout=5.0,
            )

    run(scenario())


def test_poll_based_sensor_over_tcp():
    async def scenario():
        polls = []

        def thermometer(sensor: str, respond):
            polls.append(sensor)
            respond(Event(sensor_id=sensor, seq=len(polls),
                          emitted_at=asyncio.get_event_loop().time(),
                          value=21.5, size_bytes=4))

        deliveries = []
        op = Operator("Mon", on_window=lambda ctx, c: deliveries.extend(
            c.all_values()))
        op.add_sensor("temp1", GAPLESS, TimeWindow(0.5),
                      polling=PollingPolicy(epoch_s=0.5,
                                            mode=PollMode.COORDINATED))
        app = App("monitor", op)

        cluster = LocalCluster()
        for name in ("hub", "tv"):
            cluster.add_process(name)
        cluster.add_poll_sensor("temp1", thermometer, service_time=0.05,
                                default_epoch=0.5)
        cluster.deploy(app)
        async with cluster:
            started = asyncio.get_event_loop().time()
            await cluster.wait_for(
                lambda: len(polls) >= 3 and len(deliveries) >= 1,
                timeout=8.0,
            )
            elapsed = asyncio.get_event_loop().time() - started
            # Coordinated polling: roughly one poll per 0.5 s epoch, not
            # one per process per epoch.
            assert len(polls) <= 4 + 2 * elapsed / 0.5
        assert deliveries and all(v == 21.5 for v in deliveries)

    run(scenario())


def test_cluster_validates_deployment():
    async def scenario():
        cluster = LocalCluster()
        cluster.add_process("hub")
        cluster.deploy(door_light_app())  # needs door1/light1: undeclared
        with pytest.raises(ValueError):
            await cluster.start()
        await cluster.stop()

    run(scenario())
