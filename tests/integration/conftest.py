"""Shared builders for integration tests."""

from __future__ import annotations

import pytest

from repro.core.delivery import Delivery, GAPLESS
from repro.core.graph import App
from repro.core.home import Home, HomeConfig
from repro.core.operators import Operator
from repro.core.windows import CountWindow


class Collected:
    """Values observed by a collector operator, for assertions."""

    def __init__(self) -> None:
        self.values: list = []
        self.events: list = []

    def __len__(self) -> int:
        return len(self.values)


def collector_app(
    sensors: list[str],
    guarantee: Delivery = GAPLESS,
    *,
    actuator: str | None = None,
    name: str = "collector",
) -> tuple[App, Collected]:
    """An app that records every event it processes."""
    collected = Collected()

    def on_window(ctx, combined) -> None:
        for event in combined.all_events():
            collected.values.append(event.value)
            collected.events.append(event)
        if actuator is not None and combined.all_events():
            ctx.actuate(actuator, "set", combined.all_events()[-1].value)

    operator = Operator("Collector", on_window=on_window)
    for sensor in sensors:
        operator.add_sensor(sensor, guarantee, CountWindow(1))
    if actuator is not None:
        operator.add_actuator(actuator, guarantee)
    return App(name, operator), collected


def five_process_home(
    *,
    receiving: list[str],
    guarantee: Delivery = GAPLESS,
    seed: int = 7,
    loss_rate: float = 0.0,
    config: HomeConfig | None = None,
) -> tuple[Home, Collected]:
    """p0..p4, app pinned to p0 via its actuator, one IP software sensor."""
    home = Home(config or HomeConfig(seed=seed))
    for i in range(5):
        home.add_process(f"p{i}", adapters=("ip", "zwave"))
    home.add_sensor("s1", kind="door", technology="ip",
                    processes=receiving, loss_rate=loss_rate)
    home.add_actuator("a1", processes=["p0"])
    home.add_actuator("a2", processes=["p0"])
    app, collected = collector_app(["s1"], guarantee, actuator="a1")
    app.operators[0].add_actuator("a2", guarantee)
    home.deploy(app)
    home.start()
    return home, collected


@pytest.fixture
def make_home():
    return five_process_home
