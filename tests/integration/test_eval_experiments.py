"""Smoke + shape tests for the evaluation harness itself.

Each experiment runs with reduced parameters; assertions target the paper's
qualitative claims, not absolute numbers.
"""

from repro.eval.experiments import (
    EXPERIMENTS,
    fig1_deployment_skew,
    fig4a_delay_farthest,
    fig4b_delay_local,
    fig5_network_overhead,
    fig6_link_loss,
    fig7_process_failure,
    fig8_coordinated_polling,
    table1_app_catalog,
    table3_sensor_classes,
)


def test_registry_covers_every_table_and_figure():
    assert set(EXPERIMENTS) == {
        "fig1", "table1", "table3", "fig4a", "fig4b", "fig5", "fig6",
        "fig7", "fig8",
    }


def test_fig1_door_skew_dominates():
    table = fig1_deployment_skew(days=2.0)
    skew = {row[0]: row[5] for row in table.rows}
    assert skew["door1"] > 10 * max(v for k, v in skew.items() if k != "door1")
    emitted = {row[0]: row[1] for row in table.rows}
    received = {row[0]: max(row[2], row[3], row[4]) for row in table.rows}
    # The best link for every sensor loses almost nothing.
    for sensor in emitted:
        assert received[sensor] >= emitted[sensor] * 0.97


def test_table1_all_apps_live():
    table = table1_app_catalog(duration=40.0)
    assert len(table.rows) == 13
    assert all(row[3] > 0 for row in table.rows), "every app must process events"
    assert all(row[6] == 0 for row in table.rows), "no operator errors"
    deliveries = {row[0]: row[2] for row in table.rows}
    assert deliveries["Intrusion-detection"] == "gapless"
    assert deliveries["Automated lighting"] == "gap"


def test_table3_classes():
    table = table3_sensor_classes()
    for row in table.rows:
        kind, size_class, _mode, _tech, event_bytes, wire_bytes = row
        if size_class == "small":
            assert 4 <= event_bytes <= 8
        else:
            assert event_bytes >= 1024
        assert wire_bytes > event_bytes


def test_fig4a_shapes():
    table = fig4a_delay_farthest(duration=20.0, sizes=(4, 20_480))
    gap_small = [table.cell("delay_ms", guarantee="gap", event_bytes=4,
                            processes=n) for n in (2, 3, 4, 5)]
    gapless_small = [table.cell("delay_ms", guarantee="gapless", event_bytes=4,
                                processes=n) for n in (2, 3, 4, 5)]
    # Gap is ~flat; Gapless grows with the ring length.
    assert gap_small[-1] - gap_small[0] < 2.0
    assert gapless_small[-1] > gapless_small[0] + 4.0
    # Gapless premium at 2-3 processes is in the high-single-digit ms range.
    assert 4.0 < gapless_small[0] - gap_small[0] < 12.0
    # Larger events cost more.
    assert table.cell("delay_ms", guarantee="gap", event_bytes=20_480,
                      processes=5) > gap_small[-1]


def test_fig4b_local_delivery_is_1_to_2_ms():
    table = fig4b_delay_local(duration=20.0)
    for row in table.rows:
        assert 0.8 <= row[3] <= 2.2


def test_fig5_shapes():
    table = fig5_network_overhead(duration=15.0, sizes=(4,))
    gapless = {row[2]: row[4] for row in table.rows if row[0] == "gapless"}
    bcast = {row[2]: row[4] for row in table.rows if row[0] == "naive-broadcast"}
    # Gapless constant in #receivers; broadcast grows ~linearly.
    assert max(gapless.values()) / min(gapless.values()) < 1.15
    assert bcast[5] / bcast[1] > 4.0
    # The paper's crossover: broadcast cheaper at 1 receiver, then worse.
    assert bcast[1] < gapless[1]
    assert bcast[2] > gapless[2]
    assert bcast[5] / gapless[5] > 2.5


def test_fig5_normalized_overhead_lower_for_large_events():
    table = fig5_network_overhead(duration=10.0, sizes=(4, 20_480),
                                  receiving_counts=(3,))
    small = table.cell("normalized_vs_gap", protocol="gapless", event_bytes=4,
                       receiving=3)
    large = table.cell("normalized_vs_gap", protocol="gapless",
                       event_bytes=20_480, receiving=3)
    assert large < small


def test_fig6_shapes():
    table = fig6_link_loss(duration=60.0, seeds=(42,),
                           loss_rates=(0.0, 0.5), receiving_counts=(1, 2, 5))
    gap_50 = table.cell("delivered_pct", guarantee="gap", receiving=2,
                        loss_rate=0.5)
    gapless_50_2 = table.cell("delivered_pct", guarantee="gapless",
                              receiving=2, loss_rate=0.5)
    gapless_50_5 = table.cell("delivered_pct", guarantee="gapless",
                              receiving=5, loss_rate=0.5)
    assert 40 < gap_50 < 60          # ~ 1 - loss
    assert 65 < gapless_50_2 < 85    # ~ 1 - loss^2
    assert gapless_50_5 > 90         # ~ 1 - loss^5
    # No loss: both deliver everything.
    assert table.cell("delivered_pct", guarantee="gap", receiving=1,
                      loss_rate=0.0) > 99.0


def test_fig7_spike_and_hole():
    table = fig7_process_failure()
    gap = {row[1]: row[2] for row in table.rows if row[0] == "gap"}
    gapless = {row[1]: row[2] for row in table.rows if row[0] == "gapless"}
    # Both deliver ~10/s before the crash and nothing during detection.
    assert gap[20.0] == gapless[20.0] == 10
    assert gap[25.0] == gapless[25.0] == 0
    # Gapless catches up with a burst; Gap just resumes.
    recovery_gapless = max(gapless[t] for t in (26.0, 27.0))
    recovery_gap = max(gap[t] for t in (26.0, 27.0))
    assert recovery_gapless >= 25
    assert recovery_gap <= 15


def test_fig8_bands():
    table = fig8_coordinated_polling(seeds=(42,), duration=100.0)
    for row in table.rows:
        sensor, mode, ratio, _gaps = row
        if mode == "coordinated":
            assert 0.98 <= ratio <= 1.2, (sensor, ratio)
        elif mode == "uncoordinated":
            assert 1.4 <= ratio <= 2.6, (sensor, ratio)
        else:  # single poller: optimal, possibly missing failed epochs
            assert ratio <= 1.15, (sensor, ratio)


def test_render_produces_text():
    table = table3_sensor_classes()
    text = table.render()
    assert "table3" in text
    assert "temperature" in text


def test_cli_runs_an_experiment(capsys):
    from repro.eval.cli import main

    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Off-the-shelf sensor classification" in out


def test_cli_passes_parameters(capsys):
    from repro.eval.cli import main

    assert main(["fig4b", "--duration", "5", "--seeds", "42"]) == 0
    assert "app-bearing process receives directly" in capsys.readouterr().out
