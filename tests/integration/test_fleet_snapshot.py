"""Checkpoint/restore: kill a fleet run and finish it byte-identically."""

from __future__ import annotations

import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.fleet import DAY_S, Fleet
from repro.eval.workloads import fleet_deployment
from repro.sim.snapshot import FORMAT_VERSION, SnapshotError, load_fleet

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Day 1 of a 2-day, 2-home run, checkpointed at the day boundary; the
#: process then dies without reaching day 2 (the "kill").
_CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.core.fleet import DAY_S
from repro.eval.workloads import fleet_deployment

fleet, _ = fleet_deployment(homes=2, seed=11, days=2.0)
fleet.run_until(DAY_S)
fleet.checkpoint({snap!r})
sys.exit(0)
"""


def test_checkpoint_kill_resume_digest_byte_identical(tmp_path):
    """Acceptance: a killed-and-resumed run equals the uninterrupted one."""
    snap = tmp_path / "fleet.snap"
    subprocess.run(
        [sys.executable, "-c",
         _CHILD_SCRIPT.format(src=REPO_SRC, snap=str(snap))],
        check=True, timeout=300,
    )
    assert snap.exists()

    resumed = Fleet.restore(snap)
    assert resumed.context.now == DAY_S
    resumed.run_until(2 * DAY_S)

    reference, _ = fleet_deployment(homes=2, seed=11, days=2.0)
    reference.run_until(2 * DAY_S)

    assert resumed.digest() == reference.digest()
    assert resumed.metrics() == reference.metrics()


def test_checkpoint_roundtrip_in_process(tmp_path):
    snap = tmp_path / "fleet.snap"
    fleet, _ = fleet_deployment(homes=2, seed=3, days=2.0)
    fleet.run_until(DAY_S)
    fleet.checkpoint(snap)
    # Checkpointing is non-destructive: the original keeps running...
    fleet.run_until(2 * DAY_S)
    # ...and the restored copy reaches the same final state independently.
    restored = Fleet.restore(snap)
    restored.run_until(2 * DAY_S)
    assert restored.digest() == fleet.digest()


def test_checkpoint_refused_mid_day(tmp_path):
    fleet, _ = fleet_deployment(homes=2, seed=3, days=1.0)
    fleet.run_until(0.25 * DAY_S)
    with pytest.raises(SnapshotError, match="day boundary"):
        fleet.checkpoint(tmp_path / "fleet.snap")


def test_load_rejects_foreign_and_future_files(tmp_path):
    garbage = tmp_path / "garbage.snap"
    garbage.write_bytes(b"not a pickle at all")
    with pytest.raises(SnapshotError, match="corrupt"):
        load_fleet(garbage)

    foreign = tmp_path / "foreign.snap"
    foreign.write_bytes(pickle.dumps({"hello": "world"}))
    with pytest.raises(SnapshotError, match="not a fleet snapshot"):
        load_fleet(foreign)

    future = tmp_path / "future.snap"
    future.write_bytes(pickle.dumps({
        "magic": "rivulet-fleet-snapshot",
        "format_version": FORMAT_VERSION + 1,
        "fleet": None,
    }))
    with pytest.raises(SnapshotError, match="format version"):
        load_fleet(future)

    with pytest.raises(SnapshotError, match="no snapshot"):
        load_fleet(tmp_path / "missing.snap")


def test_snapshot_write_is_atomic(tmp_path):
    """A checkpoint overwrites the previous snapshot only as a whole file."""
    snap = tmp_path / "fleet.snap"
    fleet, _ = fleet_deployment(homes=2, seed=3, days=2.0)
    fleet.run_until(DAY_S)
    fleet.checkpoint(snap)
    first = snap.read_bytes()
    fleet.run_until(2 * DAY_S)
    fleet.checkpoint(snap)
    second = snap.read_bytes()
    assert first != second
    # No staging residue next to the target.
    assert list(tmp_path.iterdir()) == [snap]
    assert load_fleet(snap).context.now == 2 * DAY_S
