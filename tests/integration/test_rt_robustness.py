"""Robustness tests for the asyncio runtime: dead peers, garbage, state.

All waits are deadline-based (``wait_for``) rather than fixed sleeps.
"""

import asyncio
import struct

from repro.core.delivery import GAPLESS
from repro.core.graph import App
from repro.core.operators import Operator
from repro.core.windows import CountWindow
from repro.rt import LocalCluster
from repro.rt.cluster import free_port
from repro.rt.wire import WIRE_VERSION


def run(coro):
    return asyncio.run(coro)


def simple_app() -> App:
    op = Operator("L", on_window=lambda ctx, c: None)
    op.add_sensor("s1", GAPLESS, CountWindow(1))
    return App("app", op)


def two_node_cluster() -> LocalCluster:
    cluster = LocalCluster()
    cluster.add_process("a")
    cluster.add_process("b")
    cluster.add_push_sensor("s1", receivers=["a", "b"])
    cluster.deploy(simple_app())
    return cluster


async def write_raw(port: int, data: bytes) -> None:
    _reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(data)
    await writer.drain()
    writer.close()


def test_sends_to_dead_peer_do_not_crash_the_sender():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            await cluster.quiesce(idle_for=0.2, timeout=5.0)
            await cluster.crash("b")
            # a keeps emitting into the void: frames are dropped, a lives.
            for _ in range(5):
                cluster.emit("s1", True)
            node = cluster.node("a")
            await cluster.wait_for(
                lambda: node.store.total_events() == 5, timeout=5.0
            )
            assert node.alive

    run(scenario())


def test_garbage_frames_are_dropped():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            node = cluster.node("a")
            # Correct header, garbage body: the node traces a wire error
            # and drops the connection without dying.
            await write_raw(
                node.port,
                bytes([WIRE_VERSION]) + struct.pack(">I", 11) + b"not json!!!",
            )
            await cluster.wait_for(
                lambda: cluster.trace.count("wire_error") >= 1, timeout=5.0
            )
            # The node survived and still processes real traffic.
            cluster.emit("s1", True)
            await cluster.wait_for(
                lambda: node.store.total_events() == 1, timeout=5.0
            )

    run(scenario())


def test_wrong_version_frame_rejected():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            node = cluster.node("a")
            await write_raw(
                node.port,
                bytes([WIRE_VERSION + 1]) + struct.pack(">I", 2) + b"{}",
            )
            await cluster.wait_for(
                lambda: cluster.trace.count("wire_error") >= 1, timeout=5.0
            )
            assert node.alive

    run(scenario())


def test_oversized_frame_rejected():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            node = cluster.node("a")
            # Absurd length prefix: rejected at the header, never buffered.
            await write_raw(
                node.port, bytes([WIRE_VERSION]) + struct.pack(">I", 2**31)
            )
            await cluster.wait_for(
                lambda: cluster.trace.count("wire_error") >= 1, timeout=5.0
            )
            assert node.alive

    run(scenario())


def test_unknown_message_kind_traced():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            node = cluster.node("a")
            from repro.net.message import Message
            from repro.rt.wire import encode_message

            frame = encode_message(Message(kind="martian", src="x", dst="a",
                                           payload={}))
            await write_raw(node.port, frame)
            await cluster.wait_for(
                lambda: node.traced.count("unhandled_message") >= 1,
                timeout=5.0,
            )

    run(scenario())


def test_replicated_store_over_tcp():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            cluster.node("a").kv.put("mode", "home")
            await cluster.wait_for(
                lambda: cluster.node("b").kv.get("mode") == "home",
                timeout=5.0,
            )

    run(scenario())


def test_free_port_returns_bindable_ports():
    ports = {free_port() for _ in range(5)}
    assert all(1024 < p < 65536 for p in ports)
