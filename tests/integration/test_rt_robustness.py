"""Robustness tests for the asyncio runtime: dead peers, garbage, state."""

import asyncio
import struct

from repro.core.delivery import GAPLESS
from repro.core.graph import App
from repro.core.operators import Operator
from repro.core.windows import CountWindow
from repro.rt import LocalCluster
from repro.rt.cluster import free_port


def run(coro):
    return asyncio.run(coro)


def simple_app() -> App:
    op = Operator("L", on_window=lambda ctx, c: None)
    op.add_sensor("s1", GAPLESS, CountWindow(1))
    return App("app", op)


def two_node_cluster() -> LocalCluster:
    cluster = LocalCluster()
    cluster.add_process("a")
    cluster.add_process("b")
    cluster.add_push_sensor("s1", receivers=["a", "b"])
    cluster.deploy(simple_app())
    return cluster


def test_sends_to_dead_peer_do_not_crash_the_sender():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            await cluster.settle(0.3)
            await cluster.crash("b")
            # a keeps emitting into the void: frames are dropped, a lives.
            for _ in range(5):
                cluster.emit("s1", True)
                await cluster.settle(0.1)
            assert cluster.node("a").alive
            assert cluster.node("a").store.total_events() == 5

    run(scenario())


def test_garbage_frames_are_dropped():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            await cluster.settle(0.3)
            node = cluster.node("a")
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           node.port)
            writer.write(struct.pack(">I", 11) + b"not json!!!")
            await writer.drain()
            writer.close()
            await cluster.settle(0.3)
            # The node survived and still processes real traffic.
            cluster.emit("s1", True)
            await cluster.settle(0.3)
            assert node.store.total_events() == 1

    run(scenario())


def test_oversized_frame_rejected():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            await cluster.settle(0.2)
            node = cluster.node("a")
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           node.port)
            writer.write(struct.pack(">I", 2**31))  # absurd length prefix
            await writer.drain()
            writer.close()
            await cluster.settle(0.2)
            assert node.alive

    run(scenario())


def test_unknown_message_kind_traced():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            await cluster.settle(0.2)
            node = cluster.node("a")
            from repro.net.message import Message
            from repro.rt.wire import encode_message

            frame = encode_message(Message(kind="martian", src="x", dst="a",
                                           payload={}))
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           node.port)
            writer.write(frame)
            await writer.drain()
            writer.close()
            await cluster.settle(0.3)
            assert node.traced.count("unhandled_message") >= 1

    run(scenario())


def test_replicated_store_over_tcp():
    async def scenario():
        cluster = two_node_cluster()
        async with cluster:
            await cluster.settle(0.3)
            cluster.node("a").kv.put("mode", "home")
            await cluster.settle(0.4)
            assert cluster.node("b").kv.get("mode") == "home"

    run(scenario())


def test_free_port_returns_bindable_ports():
    ports = {free_port() for _ in range(5)}
    assert all(1024 < p < 65536 for p in ports)
