"""Integration tests for Gapless synchronization across partitions.

Section 4.1's successor synchronization is what turns "replicated to the
processes that could be reached" into "eventually replicated everywhere":
these tests partition the home, let events accumulate on one side, and
verify the other side catches up after healing.
"""

from repro.core.delivery import GAPLESS
from tests.integration.conftest import five_process_home


def test_events_cross_partition_after_heal(make_home):
    # Sensor reachable only by p1; app on p0. Partition p0 away from p1.
    home, collected = make_home(receiving=["p1"])
    home.run_until(2.0)
    home.set_partition([["p0"], ["p1", "p2", "p3", "p4"]])
    home.run_until(6.0)

    sensor = home.sensor("s1")
    for _ in range(20):
        sensor.emit("during-partition")
        home.run_for(0.1)
    # p0 is the configured app host but cut off; the majority side promoted
    # its own active, which processed the events.
    side_b_count = len(collected.events)
    assert side_b_count >= 18

    home.heal_partition()
    home.run_until(30.0)
    # After healing, p0's journal catches up through successor sync.
    assert home.processes["p0"].store.total_events() == sensor.events_emitted


def test_both_sides_journal_their_own_events():
    home, collected = five_process_home(
        receiving=["p1", "p2"], guarantee=GAPLESS, seed=9
    )
    home.run_until(2.0)
    # p1 and p2 land on different sides; both receive the multicast.
    home.set_partition([["p0", "p1"], ["p2", "p3", "p4"]])
    home.run_until(6.0)
    home.sensor("s1").emit("both-sides")
    home.run_until(10.0)
    for name in ("p0", "p1", "p2", "p3", "p4"):
        assert home.processes[name].store.total_events() == 1, name


def test_ring_sync_catches_up_a_slow_rejoiner(make_home):
    """A process partitioned alone misses everything; on heal it recovers
    the full journal without any broadcast storm."""
    home, _ = make_home(receiving=["p1"])
    home.run_until(2.0)
    home.set_partition([["p4"], ["p0", "p1", "p2", "p3"]])
    sensor = home.sensor("s1")
    sensor.start_periodic(10.0)
    home.run_until(20.0)
    assert home.processes["p4"].store.total_events() == 0

    home.heal_partition()
    home.run_until(40.0)
    assert home.processes["p4"].store.total_events() >= sensor.events_emitted - 2
    # Sync used targeted re-sends, not the O(n^2) reliable broadcast.
    assert home.trace.count("rbcast_origin") == 0


def test_partition_during_burst_loses_nothing_post_ingest(make_home):
    home, collected = make_home(receiving=[f"p{i}" for i in range(5)])
    home.run_until(2.0)
    sensor = home.sensor("s1")
    sensor.start_periodic(20.0)
    home.scheduler.call_at(5.0, home.set_partition,
                           [["p0", "p1"], ["p2", "p3", "p4"]])
    home.scheduler.call_at(12.0, home.heal_partition)
    home.run_until(35.0)
    sensor.stop_periodic()
    home.run_until(40.0)  # drain in-flight deliveries
    distinct = {e.seq for e in collected.events}
    assert len(distinct) == sensor.events_emitted
