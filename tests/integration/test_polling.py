"""Integration tests for coordinated polling (Section 4.1, Fig. 8)."""

from repro.core.delivery import GAP, GAPLESS, PollingPolicy, PollMode
from repro.core.graph import App
from repro.core.home import Home
from repro.core.operators import Operator
from repro.core.windows import TimeWindow


def poll_home(
    *, mode: PollMode | None, guarantee=GAPLESS, epoch=1.8, seed=5,
    failure_rate=0.0, gap_handler=None, processes=("p0", "p1", "p2"),
):
    op = Operator("Monitor", on_window=lambda ctx, c: None,
                  on_epoch_gap=gap_handler)
    op.add_sensor("t1", guarantee, TimeWindow(epoch),
                  polling=PollingPolicy(epoch_s=epoch, mode=mode))
    op.add_actuator("a1", guarantee)
    app = App("poll-app", op)
    home = Home(seed=seed)
    for name in processes:
        home.add_process(name)
    home.add_sensor("t1", kind="temperature", failure_rate=failure_rate)
    home.add_actuator("a1", processes=[processes[0]])
    home.deploy(app)
    home.start()
    return home


def test_coordinated_polls_roughly_once_per_epoch():
    home = poll_home(mode=PollMode.COORDINATED)
    home.run_until(90.0)
    epochs = 90.0 / 1.8
    polls = home.trace.count("poll_request")
    assert polls / epochs < 1.2
    assert polls / epochs >= 0.95


def test_every_epoch_produces_an_event():
    home = poll_home(mode=PollMode.COORDINATED)
    home.run_until(90.0)
    assert home.trace.count("epoch_gap") == 0
    deliveries = home.trace.count("logic_delivery")
    assert deliveries >= int(90.0 / 1.8) - 2


def test_uncoordinated_polls_more_and_drops_requests():
    coordinated = poll_home(mode=PollMode.COORDINATED)
    coordinated.run_until(90.0)
    uncoordinated = poll_home(mode=PollMode.UNCOORDINATED)
    uncoordinated.run_until(90.0)
    assert (uncoordinated.trace.count("poll_request")
            > 1.3 * coordinated.trace.count("poll_request"))
    # Overlapping requests hit the single-outstanding-poll limitation.
    assert uncoordinated.trace.count("poll_dropped_busy") > 0


def test_single_mode_has_one_poller_and_fails_over():
    home = poll_home(mode=None, guarantee=GAP)
    home.run_until(30.0)
    pollers = {e["process"] for e in home.trace.of_kind("poll_issued")}
    assert len(pollers) == 1
    (poller,) = pollers
    home.crash_process(poller)
    home.run_until(60.0)
    later = {
        e["process"]
        for e in home.trace.of_kind("poll_issued")
        if e.time > 35.0
    }
    assert later and poller not in later


def test_epoch_gap_surfaces_to_the_operator():
    gaps = []
    home = poll_home(
        mode=PollMode.COORDINATED,
        gap_handler=lambda ctx, gap: gaps.append(gap.epoch),
    )
    home.run_until(10.0)
    home.fail_sensor("t1")
    home.run_until(30.0)
    assert gaps, "sensor failure must surface as epoch-gap notifications"
    assert home.trace.count("epoch_gap_delivered") == len(gaps)


def test_sensor_recovery_resumes_event_flow():
    home = poll_home(mode=PollMode.COORDINATED)
    home.run_until(10.0)
    home.fail_sensor("t1")
    home.run_until(20.0)
    home.recover_sensor("t1")
    home.run_until(40.0)
    recent = [
        e for e in home.trace.of_kind("logic_delivery") if e.time > 25.0
    ]
    assert len(recent) >= 5


def test_poll_responses_are_ring_forwarded_under_gapless():
    home = poll_home(mode=PollMode.COORDINATED)
    home.run_until(20.0)
    # Events originate at one poller but must be journaled everywhere.
    totals = {n: p.store.total_events() for n, p in home.processes.items()}
    assert min(totals.values()) >= 9


def test_coordinated_slots_do_not_double_poll_on_glitches():
    home = poll_home(mode=PollMode.COORDINATED, failure_rate=0.05, seed=9)
    home.run_until(90.0)
    epochs = 90.0 / 1.8
    assert home.trace.count("poll_request") / epochs < 1.35
