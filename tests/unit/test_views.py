"""Unit tests for local views and ring ordering."""

import pytest

from repro.membership.views import LocalView


def test_view_always_contains_owner():
    view = LocalView.of("a", [])
    assert "a" in view
    with pytest.raises(ValueError):
        LocalView(owner="a", members=frozenset({"b"}))


def test_ring_successor_cyclic_order():
    view = LocalView.of("b", ["a", "c"])
    assert view.ring_successor("a") == "b"
    assert view.ring_successor("b") == "c"
    assert view.ring_successor("c") == "a"


def test_ring_successor_defaults_to_owner():
    view = LocalView.of("b", ["a", "c"])
    assert view.ring_successor() == "c"


def test_singleton_view_has_no_successor():
    assert LocalView.of("a", []).ring_successor() is None


def test_successor_of_non_member_routes_around():
    view = LocalView.of("a", ["c"])
    # 'b' crashed and is absent; its successor is the next live name.
    assert view.ring_successor("b") == "c"
    assert view.ring_successor("d") == "a"


def test_two_member_ring_is_symmetric():
    view = LocalView.of("a", ["b"])
    assert view.ring_successor("a") == "b"
    assert view.ring_successor("b") == "a"


def test_merged_with():
    view = LocalView.of("a", ["b"])
    assert view.merged_with(["c"]) == frozenset({"a", "b", "c"})


def test_iteration_sorted_and_len():
    view = LocalView.of("b", ["c", "a"])
    assert list(view) == ["a", "b", "c"]
    assert len(view) == 3
