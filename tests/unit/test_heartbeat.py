"""Unit tests for the keep-alive failure detector, on FakeEnv loopback."""

import pytest

from repro.membership.heartbeat import HeartbeatService
from repro.sim.scheduler import Scheduler
from tests.helpers import FakeEnv


def make_pair(interval=0.5, timeout=2.0):
    sched = Scheduler()
    a = FakeEnv("a", sched)
    b = FakeEnv("b", sched)
    a.link(b)
    ha = HeartbeatService(a, interval=interval, timeout=timeout)
    hb = HeartbeatService(b, interval=interval, timeout=timeout)
    return sched, a, b, ha, hb


def test_timeout_must_exceed_interval():
    env = FakeEnv("a")
    with pytest.raises(ValueError):
        HeartbeatService(env, interval=1.0, timeout=0.5)


def test_starts_optimistic():
    sched, a, b, ha, hb = make_pair()
    ha.start()
    assert "b" in ha.view
    assert ha.is_alive("b")
    assert ha.is_alive("a")


def test_keepalives_flow_both_ways():
    sched, a, b, ha, hb = make_pair()
    ha.start()
    hb.start()
    sched.run_until(5.0)
    assert len(a.sent_of_kind("keepalive")) >= 9
    assert "a" in hb.view and "b" in ha.view


def test_silent_peer_gets_suspected():
    sched, a, b, ha, hb = make_pair()
    ha.start()  # b never starts its own service
    sched.run_until(5.0)
    assert "b" not in ha.view


def test_suspect_then_unsuspect_on_recovery():
    sched, a, b, ha, hb = make_pair()
    changes = []
    ha.add_view_listener(lambda view, added, removed: changes.append((set(added), set(removed))))
    ha.start()
    hb.start()
    sched.run_until(2.0)

    hb.stop()
    sched.run_until(6.0)
    assert "b" not in ha.view
    assert (set(), {"b"}) in changes

    hb2 = HeartbeatService(b, interval=0.5, timeout=2.0)
    hb2.start()
    sched.run_until(8.0)
    assert "b" in ha.view
    assert ({"b"}, set()) in changes


def test_detection_within_timeout_plus_interval():
    sched, a, b, ha, hb = make_pair(interval=0.5, timeout=2.0)
    ha.start()
    hb.start()
    sched.run_until(10.0)
    hb.stop()
    suspect_times = []
    ha.add_view_listener(lambda *_: suspect_times.append(sched.now))
    sched.run_until(20.0)
    assert suspect_times, "peer was never suspected"
    # Last keep-alive was at ~10.0; detection needs > timeout but should not
    # take much longer than timeout + one check interval.
    assert 12.0 <= suspect_times[0] <= 13.1


def test_payload_piggyback_roundtrip():
    sched, a, b, ha, hb = make_pair()
    received = []
    ha.add_payload_provider("wm", lambda: {"app": 7})
    hb.add_payload_consumer("wm", lambda sender, value: received.append((sender, value)))
    ha.start()
    hb.start()
    sched.run_until(2.0)
    assert ("a", {"app": 7}) in received


def test_empty_payloads_not_piggybacked():
    sched, a, b, ha, hb = make_pair()
    ha.add_payload_provider("wm", dict)
    ha.start()
    sched.run_until(1.0)
    assert all("wm" not in m.payload for m in a.sent_of_kind("keepalive"))


def test_stop_halts_ticks():
    sched, a, b, ha, hb = make_pair()
    ha.start()
    sched.run_until(1.0)
    sent_before = len(a.sent)
    ha.stop()
    sched.run_until(5.0)
    assert len(a.sent) == sent_before


def test_suspicion_trace_pinned_under_watermark_scan():
    """The suspicion-scan watermark is a pure fast-out: the suspect and
    unsuspect records of a silence/recovery cycle must be exactly the ones
    the per-tick full scan produced (same times, same peers)."""
    sched, a, b, ha, hb = make_pair(interval=0.5, timeout=2.0)
    ha.start()
    hb.start()
    sched.run_until(3.0)
    hb.stop()
    sched.run_until(10.0)
    hb.start()
    sched.run_until(15.0)
    records = [
        (r.time, r.kind, dict(r.fields))
        for r in a.trace_log
        if r.kind in ("suspect", "unsuspect")
    ]
    # b's last keep-alive lands at t=3.0; its deadline (3.0 + timeout) is
    # crossed at the t=5.5 scan tick. The restart's first keep-alive
    # arrives one link delay after t=10.0 and clears the suspicion.
    assert records == [
        (5.5, "suspect", {"process": "a", "peers": ["b"]}),
        (10.001, "unsuspect", {"process": "a", "peer": "b"}),
    ]


def test_returning_peer_resets_watermark_for_prompt_redetection():
    """After every peer was suspected the watermark sits far in the future;
    a returning peer must pull it back so a second silence is still
    detected within timeout + interval."""
    sched, a, b, ha, hb = make_pair(interval=0.5, timeout=2.0)
    ha.start()
    hb.start()
    sched.run_until(3.0)
    hb.stop()
    sched.run_until(10.0)
    assert "b" not in ha.view
    hb.start()
    sched.run_until(12.0)
    assert "b" in ha.view
    hb.stop()          # second silence
    sched.run_until(12.0 + 2.0 + 0.5 + 0.001)
    assert "b" not in ha.view
