"""Unit tests for Marzullo's interval fusion (Section 6.2)."""

import pytest

from repro.core.marzullo import (
    FusionError,
    Interval,
    fuse,
    fuse_values,
    max_arbitrary_failures,
    max_failstop_failures,
)


def test_interval_validation():
    with pytest.raises(ValueError):
        Interval(2.0, 1.0)
    assert Interval.around(5.0, 1.0) == Interval(4.0, 6.0)
    with pytest.raises(ValueError):
        Interval.around(5.0, -1.0)


def test_single_interval_f0():
    assert fuse([Interval(1.0, 2.0)], 0) == Interval(1.0, 2.0)


def test_all_overlapping_f0():
    fused = fuse([Interval(0, 10), Interval(2, 8), Interval(4, 12)], 0)
    assert fused == Interval(4.0, 8.0)


def test_one_outlier_tolerated():
    intervals = [Interval(20, 21), Interval(20.5, 21.5), Interval(100, 101)]
    fused = fuse(intervals, 1)
    # The two good sensors agree on [20.5, 21].
    assert fused == Interval(20.5, 21.0)


def test_outlier_not_tolerated_with_f0():
    intervals = [Interval(20, 21), Interval(100, 101)]
    with pytest.raises(FusionError):
        fuse(intervals, 0)


def test_touching_intervals_count_as_overlap():
    fused = fuse([Interval(1, 2), Interval(2, 3)], 0)
    assert fused == Interval(2.0, 2.0)


def test_result_spans_disjoint_qualifying_regions():
    # With f=1 of 3, both pairwise overlaps qualify; l is the smallest
    # doubly-covered point, u the largest (per the paper's definition).
    intervals = [Interval(0, 4), Interval(2, 6), Interval(5, 9)]
    fused = fuse(intervals, 1)
    assert fused == Interval(2.0, 6.0)


def test_f_bounds_validation():
    with pytest.raises(ValueError):
        fuse([Interval(0, 1)], 1)
    with pytest.raises(ValueError):
        fuse([Interval(0, 1)], -1)
    with pytest.raises(FusionError):
        fuse([], 0)


def test_fuse_values_convenience():
    fused = fuse_values([20.0, 20.4, 19.8], uncertainty=0.5, f=0)
    assert fused.lo == pytest.approx(19.9)
    assert fused.hi == pytest.approx(20.3)
    assert fused.contains(20.0)


def test_failure_model_bounds():
    assert max_failstop_failures(4) == 3
    assert max_arbitrary_failures(4) == 1
    assert max_arbitrary_failures(1) == 0
    assert max_arbitrary_failures(7) == 2
    with pytest.raises(ValueError):
        max_failstop_failures(0)
    with pytest.raises(ValueError):
        max_arbitrary_failures(0)


def test_midpoint_and_width():
    interval = Interval(1.0, 3.0)
    assert interval.midpoint == 2.0
    assert interval.width == 2.0
