"""Sans-IO unit tests for reliable broadcast and the naive baseline."""

from repro.core.broadcast import NBCAST, RBCAST, NaiveBroadcastDelivery, ReliableBroadcast
from repro.core.delivery_service import DeliveryContext, DeviceInfo
from repro.core.eventlog import EventStore
from repro.core.events import Event
from repro.core.plan import DeploymentPlan
from repro.membership.heartbeat import HeartbeatService
from repro.net.latency import ProcessingModel
from repro.net.message import Message
from tests.helpers import FakeEnv


def make_ctx(name="p1", peers=("p2", "p3")):
    env = FakeEnv(name)
    for peer in peers:
        env.link(FakeEnv(peer, env.scheduler))
    heartbeat = HeartbeatService(env, interval=0.5, timeout=2.0)
    delivered = []
    ctx = DeliveryContext(
        env=env,
        heartbeat=heartbeat,
        plan=DeploymentPlan(processes=[name, *peers],
                            sensor_hosts={"s": [name, *peers]},
                            actuator_hosts={}, apps=[]),
        store=EventStore(name),
        processing=ProcessingModel(local_dispatch=0.0, gapless_ingest_log=0.0,
                                   gapless_hop_processing=0.0),
        deliver_local=lambda sensor, event, only: delivered.append(event),
        on_epoch_gap=lambda *a: None,
        actuate_local=lambda c: None,
        poll_sensor=lambda *a: None,
        device_info={"s": DeviceInfo(name="s", category="sensor")},
    )
    heartbeat.start()
    return env, ctx, delivered


def ev(seq: int) -> Event:
    return Event(sensor_id="s", seq=seq, emitted_at=0.0, value=seq, size_bytes=4)


def rb_msg(event, src="p2", dst="p1") -> Message:
    return Message(kind=RBCAST, src=src, dst=dst,
                   payload={"sensor": "s", "event": event})


def test_broadcast_sends_to_everyone_in_view():
    env, ctx, _ = make_ctx()
    rb = ReliableBroadcast(ctx, on_deliver=lambda s, e: None)
    rb.broadcast("s", ev(1))
    targets = {m.dst for m in env.sent_of_kind(RBCAST)}
    assert targets == {"p2", "p3"}


def test_receipt_delivers_once_and_echoes():
    env, ctx, _ = make_ctx()
    received = []
    rb = ReliableBroadcast(ctx, on_deliver=lambda s, e: received.append(e.seq))
    env.deliver(rb_msg(ev(1), src="p2"))
    env.deliver(rb_msg(ev(1), src="p3"))  # duplicate from another path
    assert received == [1]
    # The echo excludes the sender but reaches the third process: this is
    # what makes delivery survive the originator's crash mid-broadcast.
    echo_targets = {m.dst for m in env.sent_of_kind(RBCAST)}
    assert echo_targets == {"p3"}


def test_origin_does_not_rebroadcast_received_copy():
    env, ctx, _ = make_ctx()
    rb = ReliableBroadcast(ctx, on_deliver=lambda s, e: None)
    rb.broadcast("s", ev(1))
    sent_before = len(env.sent_of_kind(RBCAST))
    env.deliver(rb_msg(ev(1), src="p2"))  # our own broadcast echoed back
    assert len(env.sent_of_kind(RBCAST)) == sent_before


def nb_msg(event, src="p2", dst="p1") -> Message:
    return Message(kind=NBCAST, src=src, dst=dst,
                   payload={"sensor": "s", "event": event})


def test_naive_broadcast_on_first_sensor_receipt():
    env, ctx, delivered = make_ctx()
    nb = NaiveBroadcastDelivery(ctx, "s")
    nb.start()
    nb.on_ingest(ev(1))
    env.scheduler.run_until(0.3)
    assert {m.dst for m in env.sent_of_kind(NBCAST)} == {"p2", "p3"}
    assert [e.seq for e in delivered] == [1]


def test_naive_broadcast_suppressed_after_peer_copy():
    """'unless it has previously received the event from another process'"""
    env, ctx, delivered = make_ctx()
    nb = NaiveBroadcastDelivery(ctx, "s")
    nb.start()
    nb.on_message(nb_msg(ev(1)))          # peer's broadcast arrives first
    env.scheduler.run_until(0.3)
    nb.on_ingest(ev(1))                   # then the sensor's own multicast
    env.scheduler.run_until(0.6)
    assert env.sent_of_kind(NBCAST) == []  # no re-broadcast
    assert [e.seq for e in delivered] == [1]


def test_naive_broadcast_deduplicates_peer_copies():
    env, ctx, delivered = make_ctx()
    nb = NaiveBroadcastDelivery(ctx, "s")
    nb.start()
    nb.on_message(nb_msg(ev(1), src="p2"))
    nb.on_message(nb_msg(ev(1), src="p3"))
    env.scheduler.run_until(0.3)
    assert [e.seq for e in delivered] == [1]


def test_naive_broadcast_notifies_seen_listeners():
    env, ctx, _ = make_ctx()
    nb = NaiveBroadcastDelivery(ctx, "s")
    seen = []
    nb.add_seen_listener(lambda e: seen.append(e.seq))
    nb.on_ingest(ev(5))
    assert seen == [5]
