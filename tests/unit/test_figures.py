"""Unit tests for the ASCII figure renderers."""

from repro.eval.experiments import ExperimentTable
from repro.eval.figures import bar_chart, chart_for


def test_bar_chart_basic():
    chart = bar_chart(
        "demo", {"a": {1: 10.0, 2: 20.0}, "b": {1: 5.0}},
        x_label="x", width=10,
    )
    assert "== demo ==" in chart
    assert "x=1" in chart and "x=2" in chart
    assert "##########" in chart      # series a at the peak
    assert "*" in chart               # series b uses the next glyph
    assert "20.00" in chart


def test_bar_chart_handles_empty_series():
    chart = bar_chart("empty", {}, width=10)
    assert "== empty ==" in chart


def test_chart_for_unknown_experiment_is_none():
    table = ExperimentTable(experiment="table3", title="t", columns=["a"],
                            rows=[[1]])
    assert chart_for(table) is None


def test_chart_for_fig5_selects_small_events():
    table = ExperimentTable(
        experiment="fig5", title="t",
        columns=["protocol", "event_bytes", "receiving", "bytes_per_event",
                 "normalized_vs_gap"],
        rows=[
            ["gapless", 4, 1, 700.0, 6.0],
            ["gapless", 4, 2, 690.0, 5.9],
            ["gapless", 20480, 1, 100000.0, 5.0],   # filtered out
            ["naive-broadcast", 4, 2, 900.0, 7.7],
        ],
    )
    chart = chart_for(table, width=20)
    assert "gapless" in chart and "naive-broadcast" in chart
    assert "5.00" not in chart  # the 20 KB row was excluded


def test_chart_for_fig7_windows_the_crash():
    rows = [["gap", float(t), 10] for t in range(48)]
    rows += [["gapless", float(t), 10] for t in range(48)]
    table = ExperimentTable(experiment="fig7", title="t",
                            columns=["guarantee", "second", "events"],
                            rows=rows)
    chart = chart_for(table, width=10)
    assert "t=   18.0" in chart
    assert "t=   40.0" not in chart  # zoomed to the crash window


def test_chart_for_fig8():
    table = ExperimentTable(
        experiment="fig8", title="t",
        columns=["sensor", "mode", "polls_per_epoch", "epoch_gaps"],
        rows=[["temp", "coordinated", 1.05, 0],
              ["temp", "uncoordinated", 1.8, 3]],
    )
    chart = chart_for(table, width=20)
    assert "coordinated" in chart and "uncoordinated" in chart
