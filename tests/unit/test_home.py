"""Unit tests for the Home facade: builder validation, fault entry points,
and run_for/start idempotence."""

import pytest

from repro.core.delivery import GAPLESS
from repro.core.home import Home, HomeConfig
from repro.eval.workloads import noop_app, single_sensor_home
from repro.sim.context import SimContext
from repro.sim.faults import FaultError


def small_home(**overrides) -> Home:
    home = Home(**overrides)
    home.add_process("hub")
    home.add_process("tv")
    home.add_sensor("door1", kind="door", processes=["hub", "tv"])
    home.add_actuator("light1", processes=["hub"])
    home.deploy(noop_app("door1", GAPLESS, actuator="light1"))
    return home


# -- builder validation ---------------------------------------------------------------


def test_duplicate_process_name_rejected():
    home = Home()
    home.add_process("hub")
    with pytest.raises(ValueError, match="already in use"):
        home.add_process("hub")


def test_name_collision_across_categories_rejected():
    home = Home()
    home.add_process("hub")
    home.add_sensor("door1", kind="door")
    with pytest.raises(ValueError, match="already in use"):
        home.add_actuator("door1")
    with pytest.raises(ValueError, match="already in use"):
        home.add_sensor("hub", kind="motion")


def test_empty_name_rejected():
    with pytest.raises(ValueError, match="non-empty"):
        Home().add_process("")


def test_unknown_sensor_kind_rejected():
    home = Home()
    with pytest.raises(KeyError, match="unknown sensor kind"):
        home.add_sensor("x1", kind="flux-capacitor")


def test_unknown_technology_rejected():
    home = Home()
    with pytest.raises(KeyError, match="unknown radio technology"):
        home.add_actuator("a1", technology="carrier-pigeon")


def test_nonpositive_compute_rejected():
    with pytest.raises(ValueError, match="compute"):
        Home().add_process("hub", compute=0.0)


def test_device_referencing_unknown_process_fails_at_start():
    home = Home()
    home.add_process("hub")
    home.add_sensor("door1", kind="door", processes=["ghost"])
    with pytest.raises(KeyError, match="unknown process 'ghost'"):
        home.start()


def test_config_and_overrides_are_mutually_exclusive():
    with pytest.raises(ValueError, match="not both"):
        Home(HomeConfig(seed=1), seed=2)


def test_start_requires_a_process():
    with pytest.raises(ValueError, match="at least one process"):
        Home().start()


def test_declaring_after_start_rejected():
    home = small_home()
    home.start()
    with pytest.raises(RuntimeError, match="already running"):
        home.add_process("late")
    with pytest.raises(RuntimeError, match="already running"):
        home.add_sensor("late1", kind="door")
    with pytest.raises(RuntimeError, match="already running"):
        home.deploy(noop_app("door1", GAPLESS, actuator="light1", name="late"))


def test_home_id_validation():
    with pytest.raises(ValueError, match="home_id"):
        Home(home_id="")
    with pytest.raises(ValueError, match="home_id"):
        Home(home_id="a/b")


def test_two_anonymous_homes_cannot_share_a_context():
    context = SimContext(seed=1)
    Home(context=context)
    with pytest.raises(ValueError, match="distinct home_id"):
        Home(context=context)


# -- fault-injection entry points -----------------------------------------------------


def test_crash_recover_faulterror_paths():
    home = small_home()
    with pytest.raises(FaultError, match="unknown process"):
        home.crash_process("ghost")
    with pytest.raises(FaultError, match="process is live"):
        home.recover_process("hub")
    home.crash_process("hub")
    with pytest.raises(FaultError, match="already crashed"):
        home.crash_process("hub")
    home.recover_process("hub")
    assert home.process("hub").alive


def test_partition_unknown_process_rejected():
    home = small_home()
    with pytest.raises(FaultError, match="unknown process"):
        home.set_partition([["hub"], ["ghost"]])


def test_device_fault_unknown_names_rejected():
    home = small_home()
    with pytest.raises(FaultError, match="unknown sensor"):
        home.fail_sensor("ghost")
    with pytest.raises(FaultError, match="unknown actuator"):
        home.fail_actuator("ghost")


def test_link_loss_validation():
    home = small_home()
    home.start()
    with pytest.raises(FaultError, match=r"loss rate must be in \[0, 1\]"):
        home.set_link_loss("door1", "hub", 1.5)
    with pytest.raises(FaultError, match="no radio link"):
        home.set_link_loss("door1", "ghost", 0.1)
    home.set_link_loss("door1", "hub", 0.25)  # valid


# -- run_for / start idempotence ------------------------------------------------------


def drive(home, sensor) -> None:
    for i in range(20):
        home.scheduler.call_at(1.0 + i * 2.5, sensor.emit, i)


def test_start_is_idempotent():
    home = small_home()
    home.start()
    processes = dict(home.processes)
    home.start()
    assert home.processes == processes


def test_run_for_in_chunks_matches_one_run():
    whole, sensor_w = single_sensor_home(n_processes=3, receiving=2, seed=5)
    drive(whole, sensor_w)
    whole.run_for(60.0)

    chunked, sensor_c = single_sensor_home(n_processes=3, receiving=2, seed=5)
    drive(chunked, sensor_c)
    for _ in range(4):
        chunked.run_for(15.0)

    assert whole.scheduler.now == chunked.scheduler.now
    assert whole.trace.digest() == chunked.trace.digest()


def test_run_for_zero_is_a_no_op_between_chunks():
    home, sensor = single_sensor_home(n_processes=2, receiving=1, seed=5)
    drive(home, sensor)
    home.run_for(30.0)
    digest = home.trace.digest()
    home.run_for(0.0)
    assert home.trace.digest() == digest
