"""Unit tests for the evaluation workload builders."""

import pytest

from repro.core.delivery import GAP, GAPLESS
from repro.eval.workloads import (
    FIG1_LINK_LOSS,
    OccupancyConfig,
    home_deployment,
    noop_app,
    single_sensor_home,
)


def test_single_sensor_home_receiving_by_count():
    home, sensor = single_sensor_home(n_processes=5, receiving=2,
                                      guarantee=GAPLESS)
    assert home.radio.reachable_processes("s1") == ["p1", "p2"]
    # Count n wraps around to include p0 (the all-receive configuration).
    home5, _ = single_sensor_home(n_processes=5, receiving=5, guarantee=GAP)
    assert home5.radio.reachable_processes("s1") == [f"p{i}" for i in range(5)]


def test_single_sensor_home_validates_receivers():
    with pytest.raises(ValueError):
        single_sensor_home(n_processes=3, receiving=7, guarantee=GAP)
    with pytest.raises(ValueError):
        single_sensor_home(n_processes=3, receiving=["p9"], guarantee=GAP)
    with pytest.raises(ValueError):
        single_sensor_home(n_processes=0, receiving=1, guarantee=GAP)


def test_app_is_pinned_to_p0():
    home, _ = single_sensor_home(n_processes=4, receiving=["p1"],
                                 guarantee=GAPLESS)
    home.run_until(1.0)
    actives = [n for n, p in home.processes.items()
               if p.execution.runtimes["app"].active]
    assert actives == ["p0"]


def test_noop_app_delivery_configuration():
    app = noop_app("s1", GAPLESS)
    assert app.sensor_requirements()["s1"].delivery is GAPLESS


def test_occupancy_workload_is_deterministic():
    def schedule_counts(seed):
        home, workload = home_deployment(seed=seed, days=1.0)
        return workload.schedule()

    assert schedule_counts(5) == schedule_counts(5)
    assert schedule_counts(5) != schedule_counts(6)


def test_occupancy_workload_volume_scales_with_days():
    home1, w1 = home_deployment(seed=3, days=1.0)
    home3, w3 = home_deployment(seed=3, days=3.0)
    one = w1.schedule()
    three = w3.schedule()
    assert 2.0 < three / one < 4.0


def test_fig1_links_are_installed():
    home, _ = home_deployment(seed=1, days=1.0)
    door1_hub = home.radio.link("door1", "hub")
    assert door1_hub.loss_rate == FIG1_LINK_LOSS[("door1", "hub")]
    assert door1_hub.loss_rate > 0.2  # the obstructed link
    motion2_tv = home.radio.link("motion2", "tv")
    assert motion2_tv.loss_rate < 0.02


def test_emissions_happen_within_waking_hours():
    home, workload = home_deployment(seed=7, days=1.0)
    times = []

    original = workload._emit_at

    def capture(at, sensor):
        times.append(at)
        original(at, sensor)

    workload._emit_at = capture
    workload.schedule()
    assert times
    hours = [(t % 86_400.0) / 3600.0 for t in times]
    # Nothing fires in the dead of night (cfg: wake ~6.5, sleep ~23).
    assert all(4.5 <= h <= 24.0 for h in hours)


def test_occupancy_config_defaults_match_fig1_calibration():
    cfg = OccupancyConfig()
    assert cfg.days == 15.0
    lo, hi = cfg.door_events_per_transition
    assert lo >= 8  # chatty commodity door sensors
