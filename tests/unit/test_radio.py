"""Unit tests for the wireless radio substrate."""

import pytest

from repro.core.events import Command, Event
from repro.net.radio import IP, RadioNetwork, ZWAVE
from repro.sim.random import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace


class StubListener:
    def __init__(self, name: str):
        self.name = name
        self.alive = True
        self.events: list[Event] = []

    def on_sensor_event(self, event: Event) -> None:
        self.events.append(event)


class StubPollSensor:
    def __init__(self, name: str, value: float = 21.0):
        self.name = name
        self.polls = 0

    def receive_poll(self, respond):
        self.polls += 1
        respond(Event(sensor_id=self.name, seq=self.polls, emitted_at=0.0,
                      value=21.0, size_bytes=4))


class StubActuator:
    def __init__(self, name: str):
        self.name = name
        self.commands: list[Command] = []

    def handle_command(self, command: Command) -> None:
        self.commands.append(command)


def make_radio():
    sched = Scheduler()
    radio = RadioNetwork(sched, RandomSource(5), Trace())
    return sched, radio


def ev(seq: int) -> Event:
    return Event(sensor_id="s", seq=seq, emitted_at=0.0, value=1, size_bytes=4)


def test_multicast_reaches_all_linked_listeners():
    sched, radio = make_radio()
    listeners = [StubListener(f"p{i}") for i in range(3)]
    for listener in listeners:
        radio.register_listener(listener)
        radio.connect("s", listener.name, IP, loss_rate=0.0)
    radio.emit("s", ev(1))
    sched.run()
    assert all(len(l.events) == 1 for l in listeners)


def test_only_linked_processes_receive():
    sched, radio = make_radio()
    linked, unlinked = StubListener("a"), StubListener("b")
    radio.register_listener(linked)
    radio.register_listener(unlinked)
    radio.connect("s", "a", IP, loss_rate=0.0)
    radio.emit("s", ev(1))
    sched.run()
    assert len(linked.events) == 1
    assert unlinked.events == []


def test_full_loss_link_never_delivers():
    sched, radio = make_radio()
    listener = StubListener("a")
    radio.register_listener(listener)
    radio.connect("s", "a", IP, loss_rate=1.0)
    for seq in range(10):
        radio.emit("s", ev(seq))
    sched.run()
    assert listener.events == []


def test_loss_rate_is_statistical_not_sticky():
    """A 50% link must deliver *some* and lose *some* (regression test for
    the fresh-child-RNG bug where every draw repeated)."""
    sched, radio = make_radio()
    listener = StubListener("a")
    radio.register_listener(listener)
    radio.connect("s", "a", IP, loss_rate=0.5)
    for seq in range(200):
        radio.emit("s", ev(seq))
    sched.run()
    assert 60 < len(listener.events) < 140


def test_crashed_listener_misses_events():
    sched, radio = make_radio()
    listener = StubListener("a")
    listener.alive = False
    radio.register_listener(listener)
    radio.connect("s", "a", IP, loss_rate=0.0)
    radio.emit("s", ev(1))
    sched.run()
    assert listener.events == []


def test_set_link_loss_requires_existing_link():
    _sched, radio = make_radio()
    with pytest.raises(KeyError):
        radio.set_link_loss("s", "a", 0.5)


def test_reachable_processes_sorted_and_disconnect():
    _sched, radio = make_radio()
    radio.connect("s", "b", IP)
    radio.connect("s", "a", IP)
    assert radio.reachable_processes("s") == ["a", "b"]
    radio.disconnect("s", "a")
    assert radio.reachable_processes("s") == ["b"]


def test_poll_roundtrip():
    sched, radio = make_radio()
    listener = StubListener("a")
    sensor = StubPollSensor("t")
    radio.register_listener(listener)
    radio.register_device(sensor)
    radio.connect("t", "a", ZWAVE, loss_rate=0.0)
    responses = []
    radio.send_poll("a", "t", responses.append)
    sched.run()
    assert sensor.polls == 1
    assert len(responses) == 1
    assert responses[0].value == 21.0


def test_poll_response_dropped_if_process_dies():
    sched, radio = make_radio()
    listener = StubListener("a")
    sensor = StubPollSensor("t")
    radio.register_listener(listener)
    radio.register_device(sensor)
    radio.connect("t", "a", ZWAVE, loss_rate=0.0)
    responses = []
    radio.send_poll("a", "t", responses.append)
    listener.alive = False
    sched.run()
    assert responses == []


def test_command_delivery():
    sched, radio = make_radio()
    actuator = StubActuator("light")
    radio.register_device(actuator)
    radio.connect("light", "a", ZWAVE, loss_rate=0.0)
    command = Command(actuator_id="light", seq=1, issued_at=0.0, action="on")
    radio.send_command("a", command)
    sched.run()
    assert [c.action for c in actuator.commands] == ["on"]


def test_command_without_link_is_dropped():
    sched, radio = make_radio()
    actuator = StubActuator("light")
    radio.register_device(actuator)
    command = Command(actuator_id="light", seq=1, issued_at=0.0, action="on")
    radio.send_command("a", command)
    sched.run()
    assert actuator.commands == []
