"""Unit tests for the TCP-like home network transport."""

import pytest

from repro.net.latency import LatencyModel
from repro.net.message import Message
from repro.net.transport import HomeNetwork
from repro.sim.random import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace


class StubEndpoint:
    def __init__(self, name: str):
        self.name = name
        self.alive = True
        self.received: list[Message] = []

    def deliver(self, message: Message) -> None:
        self.received.append(message)


@pytest.fixture
def net():
    sched = Scheduler()
    network = HomeNetwork(sched, RandomSource(1), Trace(),
                          latency=LatencyModel(jitter_fraction=0.0))
    a, b = StubEndpoint("a"), StubEndpoint("b")
    network.register(a)
    network.register(b)
    return sched, network, a, b


def msg(src="a", dst="b", kind="k", **payload) -> Message:
    return Message(kind=kind, src=src, dst=dst, payload=payload)


def test_delivery_between_live_endpoints(net):
    sched, network, a, b = net
    network.send(msg(x=1))
    sched.run()
    assert len(b.received) == 1


def test_unknown_destination_raises(net):
    sched, network, a, b = net
    with pytest.raises(KeyError):
        network.send(msg(dst="ghost"))


def test_duplicate_registration_rejected(net):
    sched, network, a, b = net
    with pytest.raises(ValueError):
        network.register(StubEndpoint("a"))


def test_fifo_per_pair_even_with_equal_sizes(net):
    sched, network, a, b = net
    for i in range(20):
        network.send(msg(i=i))
    sched.run()
    assert [m["i"] for m in b.received] == list(range(20))


def test_fifo_small_message_cannot_overtake_large(net):
    sched, network, a, b = net
    network.send(msg(kind="big", blob=b"x" * 100_000))
    network.send(msg(kind="small", x=1))
    sched.run()
    assert [m.kind for m in b.received] == ["big", "small"]


def test_crashed_sender_sends_nothing(net):
    sched, network, a, b = net
    a.alive = False
    network.send(msg())
    sched.run()
    assert b.received == []


def test_message_lost_if_destination_crashes_in_flight(net):
    sched, network, a, b = net
    network.send(msg())
    b.alive = False
    sched.run()
    assert b.received == []


def test_partition_blocks_and_heals(net):
    sched, network, a, b = net
    network.partition.set_partition([["a"], ["b"]])
    network.send(msg())
    sched.run()
    assert b.received == []
    network.partition.heal()
    network.send(msg())
    sched.run()
    assert len(b.received) == 1


def test_partition_drops_in_flight_messages(net):
    sched, network, a, b = net
    network.send(msg())
    network.partition.set_partition([["a"], ["b"]])
    sched.run()
    assert b.received == []


def test_bytes_accounting(net):
    sched, network, a, b = net
    network.send(msg(kind="data", x=1))
    network.send(msg(kind="other", x=2))
    sched.run()
    assert network.messages_sent() == 2
    assert network.messages_sent(kinds={"data"}) == 1
    assert network.bytes_sent(kinds={"data"}) > 0
    assert network.bytes_sent() == network.bytes_sent(kinds={"data", "other"})


def test_larger_messages_take_longer():
    sched = Scheduler()
    network = HomeNetwork(sched, RandomSource(1), Trace(),
                          latency=LatencyModel(jitter_fraction=0.0))
    a, b = StubEndpoint("a"), StubEndpoint("b")
    network.register(a)
    network.register(b)
    times = {}

    small = msg(kind="small", x=1)
    big = msg(kind="big", blob=b"y" * 50_000)
    network.send(small)
    sched.run()
    times["small"] = sched.now
    start = sched.now
    network.send(big)
    sched.run()
    times["big"] = sched.now - start
    assert times["big"] > times["small"]
