"""Streaming-digest sealing and trace pickling (checkpoint support)."""

from __future__ import annotations

import pickle

import pytest

from repro.sim.tracing import Trace


def _record_n(trace: Trace, n: int, start: float = 0.0) -> None:
    for i in range(n):
        trace.record(start + i * 0.5, "tick", seq=i, sensor="s1")


def test_never_sealed_digest_unchanged_by_seal_support():
    """A plain streaming digest equals the recompute-from-events digest."""
    streaming = Trace(digest=True)
    stored = Trace()
    _record_n(streaming, 300)
    _record_n(stored, 300)
    assert streaming.digest() == stored.digest()


def test_sealed_digest_is_deterministic():
    a = Trace(digest=True)
    b = Trace(digest=True)
    for trace in (a, b):
        _record_n(trace, 100)
        trace.seal()
        _record_n(trace, 100, start=100.0)
    assert a.digest() == b.digest()
    # Sealing is position-sensitive by design: a run sealed elsewhere (or
    # not at all) hashes to a different value.
    c = Trace(digest=True)
    _record_n(c, 100)
    _record_n(c, 100, start=100.0)
    assert a.digest() != c.digest()


def test_seal_requires_streaming_digest():
    with pytest.raises(RuntimeError):
        Trace().seal()


def test_digest_stable_across_repeated_calls_after_seal():
    trace = Trace(digest=True)
    _record_n(trace, 10)
    trace.seal()
    assert trace.digest() == trace.digest()


def test_pickle_refused_with_unsealed_hash_state():
    trace = Trace(digest=True)
    _record_n(trace, 10)
    with pytest.raises(TypeError, match="unsealed"):
        pickle.dumps(trace)


def test_pickle_roundtrip_at_seal_point_preserves_everything():
    trace = Trace(digest=True)
    _record_n(trace, 200)
    trace.seal()
    clone = pickle.loads(pickle.dumps(trace))

    # Aggregates and kept events survive.
    assert clone.count("tick") == trace.count("tick")
    assert len(clone.of_kind("tick")) == len(trace.of_kind("tick"))

    # Both traces continue recording and still agree byte-for-byte.
    _record_n(trace, 50, start=500.0)
    _record_n(clone, 50, start=500.0)
    assert clone.digest() == trace.digest()


def test_non_digest_trace_pickles_freely():
    trace = Trace()
    _record_n(trace, 5)
    clone = pickle.loads(pickle.dumps(trace))
    assert clone.count("tick") == 5
    assert clone.digest() == trace.digest()
