"""Unit tests for video-stream discretization (Section 8.1)."""

import pytest

from repro.devices.camera import VideoCamera
from repro.devices.catalog import make_sensor
from repro.net.radio import RadioNetwork
from repro.sim.random import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace


class Listener:
    def __init__(self, name="host"):
        self.name = name
        self.alive = True
        self.frames = []

    def on_sensor_event(self, event):
        self.frames.append(event)


@pytest.fixture
def rig():
    sched = Scheduler()
    trace = Trace()
    radio = RadioNetwork(sched, RandomSource(2), trace)
    listener = Listener()
    radio.register_listener(listener)
    camera = make_sensor("camera", "cam1", scheduler=sched, radio=radio,
                         rng=RandomSource(1), trace=trace)
    radio.connect("cam1", "host", camera.technology, loss_rate=0.0)
    return sched, camera, listener


def test_catalog_camera_is_a_video_camera(rig):
    _sched, camera, _listener = rig
    assert isinstance(camera, VideoCamera)
    assert camera.fps == 10.0


def test_stream_discretizes_at_fps(rig):
    sched, camera, listener = rig
    camera.stream(duration_s=2.0)
    sched.run()
    # 10 fps for 2 seconds -> ~20 frame events.
    assert 18 <= len(listener.frames) <= 21


def test_frame_sizes_are_jpeg_scale_and_vary(rig):
    sched, camera, listener = rig
    camera.stream(duration_s=2.0)
    sched.run()
    sizes = {f.size_bytes for f in listener.frames}
    assert all(10_000 <= s <= 22_000 for s in sizes)
    assert len(sizes) > 5  # compressed sizes vary frame to frame


def test_frames_carry_scene_and_index(rig):
    sched, camera, listener = rig
    camera.set_scene({"object": "stranger"})
    camera.emit_frame()
    camera.emit_frame()
    sched.run()
    assert [f.value["frame"] for f in listener.frames] == [1, 2]
    assert all(f.value["object"] == "stranger" for f in listener.frames)


def test_failed_camera_stops_streaming(rig):
    sched, camera, listener = rig
    camera.stream()
    sched.run_until(0.55)
    camera.fail()
    sched.run_until(3.0)
    assert len(listener.frames) <= 6  # nothing after the failure


def test_constructor_validation(rig):
    sched, camera, _ = rig
    with pytest.raises(ValueError):
        VideoCamera("x", scheduler=sched, radio=camera._radio,
                    rng=RandomSource(1), trace=camera._trace,
                    technology=camera.technology, event_size=16_384, fps=0.0)
    with pytest.raises(ValueError):
        VideoCamera("y", scheduler=sched, radio=camera._radio,
                    rng=RandomSource(1), trace=camera._trace,
                    technology=camera.technology, event_size=16_384,
                    base_frame_bytes=10)
