"""Unit tests for the content-addressed run cache."""

from repro.eval.cache import (
    RunCache,
    clear_tree_digest_memo,
    source_tree_digest,
    task_key,
)

RUNNER = "pkg.mod:fn"


# -- keys ---------------------------------------------------------------------


def test_key_is_stable_for_identical_inputs():
    assert (task_key(RUNNER, {"a": 1, "b": 2}, "tree")
            == task_key(RUNNER, {"b": 2, "a": 1}, "tree"))


def test_key_changes_with_spec_runner_and_tree():
    base = task_key(RUNNER, {"seed": 1}, "tree")
    assert task_key(RUNNER, {"seed": 2}, "tree") != base
    assert task_key("pkg.mod:other", {"seed": 1}, "tree") != base
    # a source-tree edit rolls the tree digest, invalidating every key
    assert task_key(RUNNER, {"seed": 1}, "edited-tree") != base


def test_source_tree_digest_tracks_file_content(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "mod.py").write_text("x = 1\n")
    clear_tree_digest_memo()
    before = source_tree_digest(package)
    assert before == source_tree_digest(package)  # memoized and stable

    (package / "mod.py").write_text("x = 2\n")
    clear_tree_digest_memo()
    after = source_tree_digest(package)
    assert after != before

    (package / "extra.py").write_text("y = 3\n")
    clear_tree_digest_memo()
    assert source_tree_digest(package) != after


def test_default_tree_digest_covers_the_repro_package():
    clear_tree_digest_memo()
    assert len(source_tree_digest()) == 32  # blake2b-16 hex


# -- store --------------------------------------------------------------------


def test_round_trip_and_miss(tmp_path):
    cache = RunCache(tmp_path, tree_digest="t")
    key = cache.key_for(RUNNER, {"seed": 1})
    assert cache.get(key) is None
    cache.put(key, {"verdict": "pass"}, spec={"seed": 1})
    assert cache.get(key) == {"verdict": "pass"}
    assert cache.stats() == {"hits": 1, "misses": 1}


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = RunCache(tmp_path, tree_digest="t")
    key = cache.key_for(RUNNER, {"seed": 1})
    cache.put(key, {"ok": True})
    path = tmp_path / key[:2] / f"{key}.json"
    path.write_text("{ not json")
    assert cache.get(key) is None
    path.write_text('{"no_result_field": 1}')
    assert cache.get(key) is None


def test_source_change_invalidates_previous_entries(tmp_path):
    old = RunCache(tmp_path, tree_digest="tree-v1")
    old.put(old.key_for(RUNNER, {"seed": 1}), {"stale": True})
    fresh = RunCache(tmp_path, tree_digest="tree-v2")
    assert fresh.get(fresh.key_for(RUNNER, {"seed": 1})) is None


def test_put_on_unwritable_root_is_silent(tmp_path):
    blocker = tmp_path / "cache"
    blocker.write_text("a file where the cache dir should go")
    cache = RunCache(blocker, tree_digest="t")
    cache.put(cache.key_for(RUNNER, {}), {"ok": True})  # must not raise
    assert cache.get(cache.key_for(RUNNER, {})) is None
