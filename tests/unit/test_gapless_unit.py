"""Sans-IO unit tests for the Gapless ring protocol.

These drive :class:`repro.core.gapless.GaplessDelivery` directly with
hand-crafted messages on a :class:`tests.helpers.FakeEnv` — including the
broadcast-fallback condition (``S != V and me in S``) that is hard to hit
organically in a healthy simulation.
"""

from repro.core.broadcast import ReliableBroadcast
from repro.core.delivery_service import DeliveryContext, DeviceInfo
from repro.core.eventlog import EventStore
from repro.core.events import Event
from repro.core.gapless import (
    GAPLESS_FWD,
    GAPLESS_SYNC_QUERY,
    GAPLESS_SYNC_REPLY,
    GaplessDelivery,
)
from repro.core.plan import DeploymentPlan
from repro.membership.heartbeat import HeartbeatService
from repro.net.latency import ProcessingModel
from repro.net.message import Message
from repro.net.wire import ProcessIdSet
from tests.helpers import FakeEnv


def make_instance(name="p1", peers=("p2", "p3"), **options):
    env = FakeEnv(name)
    for peer in peers:
        env.link(FakeEnv(peer, env.scheduler))
    heartbeat = HeartbeatService(env, interval=0.5, timeout=2.0)
    delivered = []
    ctx = DeliveryContext(
        env=env,
        heartbeat=heartbeat,
        plan=DeploymentPlan(processes=[name, *peers],
                            sensor_hosts={"s": [name, *peers]},
                            actuator_hosts={}, apps=[]),
        store=EventStore(name),
        processing=ProcessingModel(local_dispatch=0.0, gapless_ingest_log=0.0,
                                   gapless_hop_processing=0.0),
        deliver_local=lambda sensor, event, only: delivered.append(event),
        on_epoch_gap=lambda *a: None,
        actuate_local=lambda c: None,
        poll_sensor=lambda *a: None,
        device_info={"s": DeviceInfo(name="s", category="sensor")},
    )
    heartbeat.start()
    rb = ReliableBroadcast(ctx, on_deliver=lambda s, e: None)
    instance = GaplessDelivery(ctx, "s", rb, **options)
    instance.start()
    return env, instance, delivered


def ev(seq: int) -> Event:
    return Event(sensor_id="s", seq=seq, emitted_at=0.0, value=seq, size_bytes=4)


def fwd(event, seen, expected, src="p3", dst="p1") -> Message:
    return Message(kind=GAPLESS_FWD, src=src, dst=dst, payload={
        "sensor": "s", "event": event,
        "S": ProcessIdSet(seen), "V": ProcessIdSet(expected),
    })


def test_ingest_delivers_and_forwards_to_successor():
    env, instance, delivered = make_instance()
    instance.on_ingest(ev(1))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    assert [e.seq for e in delivered] == [1]
    forwards = env.sent_of_kind(GAPLESS_FWD)
    assert len(forwards) == 1
    assert forwards[0].dst == "p2"  # ring successor of p1
    assert set(forwards[0]["S"]) == {"p1"}
    assert set(forwards[0]["V"]) == {"p1", "p2", "p3"}


def test_first_receipt_merges_sets_and_forwards():
    env, instance, delivered = make_instance()
    instance.on_message(fwd(ev(1), seen={"p3"}, expected={"p1", "p3"}))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    assert [e.seq for e in delivered] == [1]
    forwards = env.sent_of_kind(GAPLESS_FWD)
    assert set(forwards[0]["S"]) == {"p1", "p3"}
    assert set(forwards[0]["V"]) == {"p1", "p2", "p3"}


def test_repeat_receipt_with_consistent_sets_is_ignored():
    env, instance, delivered = make_instance()
    instance.on_ingest(ev(1))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    forwards_before = len(env.sent_of_kind(GAPLESS_FWD))
    everyone = {"p1", "p2", "p3"}
    instance.on_message(fwd(ev(1), seen=everyone, expected=everyone))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    assert len(env.sent_of_kind(GAPLESS_FWD)) == forwards_before
    assert env.sent_of_kind("rbcast") == []
    assert [e.seq for e in delivered] == [1]


def test_fallback_broadcast_when_someone_was_missed():
    env, instance, delivered = make_instance()
    instance.on_ingest(ev(1))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    # The event comes back around: p1 is in S, but p2 (expected) is not.
    instance.on_message(fwd(ev(1), seen={"p1", "p3"},
                            expected={"p1", "p2", "p3"}))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    rbcasts = env.sent_of_kind("rbcast")
    assert {m.dst for m in rbcasts} == {"p2", "p3"}
    assert env.trace_log.count("gapless_fallback") == 1


def test_fallback_fires_once_per_event():
    env, instance, delivered = make_instance()
    instance.on_ingest(ev(1))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    for _ in range(3):
        instance.on_message(fwd(ev(1), seen={"p1", "p3"},
                                expected={"p1", "p2", "p3"}))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    assert env.trace_log.count("gapless_fallback") == 1


def test_no_fallback_when_not_in_seen_set():
    env, instance, delivered = make_instance()
    instance.on_ingest(ev(1))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    # S != V but p1 not in S: someone else is responsible; ignore.
    instance.on_message(fwd(ev(1), seen={"p3"}, expected={"p2", "p3"}))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    assert env.sent_of_kind("rbcast") == []


def test_fallback_disabled_by_ablation_flag():
    env, instance, delivered = make_instance(fallback_enabled=False)
    instance.on_ingest(ev(1))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    instance.on_message(fwd(ev(1), seen={"p1", "p3"},
                            expected={"p1", "p2", "p3"}))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    assert env.sent_of_kind("rbcast") == []


def test_sync_query_returns_ranges_and_reply_sends_missing():
    env, instance, delivered = make_instance()
    for seq in (1, 2, 3, 7):
        instance.on_ingest(ev(seq))
    env.scheduler.run_until(env.scheduler.now + 0.3)
    instance.on_sync_query(Message(kind=GAPLESS_SYNC_QUERY, src="p3", dst="p1",
                                   payload={"sensor": "s"}))
    replies = env.sent_of_kind(GAPLESS_SYNC_REPLY)
    assert replies[0]["ranges"] == ((1, 3), (7, 7))

    env.sent.clear()
    instance.on_sync_reply(Message(kind=GAPLESS_SYNC_REPLY, src="p2", dst="p1",
                                   payload={"sensor": "s",
                                            "ranges": [(1, 2)]}))
    resent = env.sent_of_kind(GAPLESS_FWD)
    assert [m["event"].seq for m in resent] == [3, 7]
    assert all(m.dst == "p2" for m in resent)


def test_view_change_with_new_successor_triggers_sync():
    env, instance, delivered = make_instance()
    view = env  # brevity
    # p2 (the successor) is suspected: successor becomes p3 -> sync query.
    from repro.membership.views import LocalView

    instance.on_view_change(LocalView.of("p1", ["p3"]), frozenset(),
                            frozenset({"p2"}))
    queries = env.sent_of_kind(GAPLESS_SYNC_QUERY)
    assert len(queries) == 1 and queries[0].dst == "p3"
    # Same successor again: no duplicate query.
    instance.on_view_change(LocalView.of("p1", ["p3"]), frozenset(), frozenset())
    assert len(env.sent_of_kind(GAPLESS_SYNC_QUERY)) == 1


def test_sync_disabled_by_ablation_flag():
    env, instance, delivered = make_instance(sync_enabled=False)
    from repro.membership.views import LocalView

    instance.on_view_change(LocalView.of("p1", ["p3"]), frozenset(),
                            frozenset({"p2"}))
    assert env.sent_of_kind(GAPLESS_SYNC_QUERY) == []
