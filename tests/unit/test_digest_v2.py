"""Digest v2 encoder edge cases.

The binary encoding (``repro.sim.tracing._pack_value`` and friends) must
be total over everything a trace record can carry and reproducible across
processes and machines. These tests pin the corners where a naive encoder
goes wrong: float special values, non-ASCII text, unordered collections,
int64 overflow, and hash-seed independence.
"""

from __future__ import annotations

import math
import subprocess
import sys

from repro.sim.tracing import (
    DIGEST_VERSION,
    Trace,
    _pack_int,
    _pack_str,
    _pack_value,
)


def digest_of(records) -> str:
    """Digest a fixed ``(time, kind, fields)`` sequence through a Trace."""
    trace = Trace(digest=True)
    for time, kind, fields in records:
        trace.record(time, kind, **fields)
    return trace.digest()


# -- versioning ---------------------------------------------------------------


def test_digest_version_is_2():
    assert DIGEST_VERSION == 2


def test_empty_trace_digest_is_version_seeded():
    import hashlib

    unseeded = hashlib.blake2b(digest_size=16).hexdigest()
    assert Trace(digest=True).digest() != unseeded


# -- float special values -----------------------------------------------------


def test_nan_digests_stably():
    records = [(0.5, "x", {"v": float("nan")})]
    assert digest_of(records) == digest_of(records)


def test_negative_zero_distinct_from_positive_zero():
    assert _pack_value(-0.0) != _pack_value(0.0)
    assert digest_of([(0.0, "x", {"v": -0.0})]) != digest_of(
        [(0.0, "x", {"v": 0.0})]
    )


def test_infinities_distinct_and_stable():
    inf, ninf = float("inf"), float("-inf")
    assert _pack_value(inf) != _pack_value(ninf)
    assert digest_of([(1.0, "x", {"v": inf})]) == digest_of(
        [(1.0, "x", {"v": inf})]
    )


def test_float_packing_is_bit_exact():
    # Two floats whose repr-rounding could collide must stay distinct.
    a = 0.1 + 0.2
    b = 0.30000000000000004
    assert a == b and _pack_value(a) == _pack_value(b)
    c = math.nextafter(a, 1.0)
    assert _pack_value(a) != _pack_value(c)


def test_float_time_distinct_from_int_time_record():
    # The record time is packed as float64; equal-valued records at int-
    # versus float-typed field values must not collide (different tags).
    assert _pack_value(3) != _pack_value(3.0)


# -- strings ------------------------------------------------------------------


def test_non_ascii_strings_stable_and_distinct():
    fancy = [(0.0, "x", {"name": "café ☃ \U0001f60e"})]
    plain = [(0.0, "x", {"name": "cafe snowman"})]
    assert digest_of(fancy) == digest_of(fancy)
    assert digest_of(fancy) != digest_of(plain)


def test_unpaired_surrogate_does_not_crash():
    # backslashreplace keeps the encoder total over junk device names.
    assert _pack_str("bad\ud800name") == _pack_str("bad\ud800name")


def test_length_prefix_prevents_concatenation_ambiguity():
    # "ab" + "c" must not encode like "a" + "bc".
    rec1 = [(0.0, "x", {"a": "ab", "b": "c"})]
    rec2 = [(0.0, "x", {"a": "a", "b": "bc"})]
    assert digest_of(rec1) != digest_of(rec2)


# -- ints ---------------------------------------------------------------------


def test_int64_boundary_falls_back_to_decimal():
    lo, hi = -(2**63), 2**63 - 1
    assert _pack_int(lo)[0:1] == b"q"
    assert _pack_int(hi)[0:1] == b"q"
    assert _pack_int(hi + 1)[0:1] == b"i"
    assert _pack_int(lo - 1)[0:1] == b"i"
    assert _pack_int(hi + 1) != _pack_int(hi + 2)


def test_bool_distinct_from_int():
    assert _pack_value(True) != _pack_value(1)
    assert _pack_value(False) != _pack_value(0)


# -- unordered collections ----------------------------------------------------


def test_set_digest_independent_of_insertion_order():
    forward = {f"member{i}" for i in range(20)}
    backward = set()
    for i in reversed(range(20)):
        backward.add(f"member{i}")
    assert _pack_value(forward) == _pack_value(backward)


def test_dict_digest_independent_of_key_order():
    a = {"x": 1, "y": 2, "z": 3}
    b = {"z": 3, "y": 2, "x": 1}
    assert _pack_value(a) == _pack_value(b)
    assert digest_of([(0.0, "k", {"m": a})]) == digest_of([(0.0, "k", {"m": b})])


def test_nested_collections_are_canonicalized():
    a = {"members": {"p2", "p0", "p1"}, "meta": {"b": [1, 2], "a": (3,)}}
    b = {"meta": {"a": (3,), "b": [1, 2]}, "members": {"p1", "p0", "p2"}}
    assert _pack_value(a) == _pack_value(b)


def test_nested_value_changes_change_the_digest():
    a = {"members": frozenset({"p0", "p1"})}
    b = {"members": frozenset({"p0", "p2"})}
    assert _pack_value(a) != _pack_value(b)


# -- cross-process stability --------------------------------------------------

_SUBPROCESS_SCRIPT = """
import sys
sys.path.insert(0, {src_path!r})
from repro.sim.tracing import Trace

trace = Trace(digest=True)
trace.record(0.125, "net_send", kind="keepalive", src="p0", dst="p1", bytes=64)
trace.record(0.25, "view_change", members={{"p2", "p0", "p1"}},
             meta={{"epoch": 3, "cause": "héartbeat"}})
trace.record(0.5, "weird", v=float("nan"), z=-0.0, n=None, big=2**70)
trace.record_device(0.75, "sensor_emit", "sensor", "s1", None, 7)
print(trace.digest())
"""


def test_subprocess_digest_equals_in_process():
    """The digest must not depend on PYTHONHASHSEED or process state."""
    import os
    import pathlib

    import repro

    src_path = str(pathlib.Path(repro.__file__).resolve().parents[1])
    script = _SUBPROCESS_SCRIPT.format(src_path=src_path)

    trace = Trace(digest=True)
    trace.record(0.125, "net_send", kind="keepalive", src="p0", dst="p1",
                 bytes=64)
    trace.record(0.25, "view_change", members={"p2", "p0", "p1"},
                 meta={"epoch": 3, "cause": "héartbeat"})
    trace.record(0.5, "weird", v=float("nan"), z=-0.0, n=None, big=2**70)
    trace.record_device(0.75, "sensor_emit", "sensor", "s1", None, 7)
    local = trace.digest()

    for hash_seed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=60, env=env,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == local
