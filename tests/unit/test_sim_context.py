"""Unit tests for SimContext: seed derivation, the tenant registry, the
virtual-time facade, and digest combination."""

import pytest

from repro.core.home import Home
from repro.sim.context import SimContext, combine_digests
from repro.sim.random import RandomSource, derive_seed


# -- seed derivation ------------------------------------------------------------------


def test_derive_seed_is_pure_and_stable():
    assert derive_seed(42, "home/h000") == derive_seed(42, "home/h000")
    assert derive_seed(42, "home/h000") != derive_seed(42, "home/h001")
    assert derive_seed(42, "home/h000") != derive_seed(43, "home/h000")


def test_derive_seed_matches_rng_child_streams():
    parent = RandomSource(7, name="root")
    assert parent.child("occupancy").seed == derive_seed(7, "occupancy")


def test_home_seed_is_independent_of_registration():
    fresh = SimContext(seed=9)
    expected = fresh.home_seed("h001")

    populated = SimContext(seed=9)
    for home_id in ("h000", "h002", "h003"):
        Home(context=populated, home_id=home_id, seed=populated.home_seed(home_id))
    assert populated.home_seed("h001") == expected


def test_home_seed_never_draws_from_the_fleet_rng():
    context = SimContext(seed=9)
    before = context.rng.random()
    context.home_seed("h000")
    context.home_seed("h001")
    sibling = SimContext(seed=9)
    sibling.rng.random()
    assert context.rng.random() == sibling.rng.random()
    assert before != context.rng.random()  # the stream itself does advance on draws


# -- tenant registry ------------------------------------------------------------------


def test_register_and_lookup_by_home_id():
    context = SimContext(seed=1)
    a = Home(context=context, home_id="a", seed=1)
    b = Home(context=context, home_id="b", seed=2)
    assert context.home("a") is a
    assert context.home("b") is b
    assert context.home_ids == ["a", "b"]
    assert list(context.tenants()) == [a, b]
    assert len(context) == 2


def test_duplicate_home_id_rejected():
    context = SimContext(seed=1)
    Home(context=context, home_id="a", seed=1)
    with pytest.raises(ValueError, match="distinct home_id"):
        Home(context=context, home_id="a", seed=2)


def test_unknown_home_lookup_raises():
    with pytest.raises(KeyError, match="unknown home"):
        SimContext().home("ghost")


def test_sole_tenant_registers_under_empty_id():
    home = Home(seed=5)
    assert home.context.home("") is home
    assert home.context.home_ids == [""]


# -- virtual-time facade --------------------------------------------------------------


def test_run_until_and_run_for_advance_shared_time():
    context = SimContext(seed=1)
    a = Home(context=context, home_id="a", seed=1).add_process("hub")
    b = Home(context=context, home_id="b", seed=2).add_process("hub")
    a.start()
    b.start()
    context.run_until(10.0)
    assert context.now == 10.0
    assert a.scheduler is b.scheduler is context.scheduler
    context.run_for(5.0)
    assert context.now == 15.0


# -- aggregates and digests -----------------------------------------------------------


def test_counts_by_home_and_total():
    context = SimContext(seed=1)
    for home_id, seed in (("a", 1), ("b", 2)):
        home = Home(context=context, home_id=home_id, seed=seed)
        home.add_process("hub")
        home.add_sensor("door1", kind="door", processes=["hub"])
        home.start()
    context.home("a").sensor("door1").emit(True)
    context.run_for(30.0)
    by_home = context.counts_by_home("radio_emit")
    assert by_home == {"a": 1, "b": 0}
    assert context.count("radio_emit") == 1


def test_combine_digests_is_order_insensitive():
    forward = {"a": "d1", "b": "d2"}
    backward = {"b": "d2", "a": "d1"}
    assert combine_digests(forward) == combine_digests(backward)
    assert combine_digests(forward) != combine_digests({"a": "d2", "b": "d1"})


def test_context_digest_combines_tenant_traces():
    context = SimContext(seed=1)
    for home_id, seed in (("a", 1), ("b", 2)):
        home = Home(context=context, home_id=home_id, seed=seed)
        home.add_process("hub")
        home.start()
    context.run_for(60.0)
    expected = combine_digests({
        home_id: context.home(home_id).trace.digest()
        for home_id in context.home_ids
    })
    assert context.digest() == expected
