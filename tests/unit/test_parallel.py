"""Unit tests for the parallel sweep executor."""

import time

import pytest

from repro.eval.cache import RunCache
from repro.eval.parallel import (
    SweepTask,
    resolve_jobs,
    resolve_runner,
    run_sweep,
)

#: Dotted path of this module, usable as a runner namespace in workers.
HERE = "tests.unit.test_parallel"


def echo_cell(spec):
    return {"value": spec["value"] * 2}


def slow_echo_cell(spec):
    time.sleep(spec.get("sleep", 0.0))
    return {"value": spec["value"] * 2}


def failing_cell(spec):
    if spec["value"] == 2:
        raise ValueError("cell 2 always explodes")
    return {"value": spec["value"]}


def _tasks(runner, specs):
    return [
        SweepTask(index=i, task_id=f"t{i}", runner=f"{HERE}:{runner}", spec=spec)
        for i, spec in enumerate(specs)
    ]


# -- jobs resolution ----------------------------------------------------------


def test_resolve_jobs_defaults_to_available_cores():
    assert resolve_jobs(None) >= 1


@pytest.mark.parametrize("jobs", [0, -1, -8])
def test_resolve_jobs_rejects_nonpositive(jobs):
    with pytest.raises(ValueError, match="positive worker count"):
        resolve_jobs(jobs)


def test_resolve_runner_validates_shape():
    with pytest.raises(ValueError, match="pkg.mod:fn"):
        resolve_runner("no-colon-here")
    assert resolve_runner(f"{HERE}:echo_cell") is echo_cell


# -- ordered merge ------------------------------------------------------------


def test_sequential_results_arrive_in_task_order():
    results = run_sweep(_tasks("echo_cell", [{"value": v} for v in (5, 1, 3)]))
    assert [r.value["value"] for r in results] == [10, 2, 6]
    assert all(r.ok and not r.cached for r in results)


def test_pool_merge_is_by_index_not_completion_order():
    # The first task sleeps longest, so with 2 workers it finishes last;
    # the merged order must still be task order.
    specs = [{"value": v, "sleep": s}
             for v, s in ((9, 0.3), (7, 0.0), (5, 0.0), (3, 0.0))]
    results = run_sweep(_tasks("slow_echo_cell", specs), jobs=2)
    assert [r.value["value"] for r in results] == [18, 14, 10, 6]


def test_worker_exception_is_a_per_cell_error():
    results = run_sweep(
        _tasks("failing_cell", [{"value": v} for v in (1, 2, 3)]), jobs=2,
    )
    assert [r.ok for r in results] == [True, False, True]
    assert "cell 2 always explodes" in results[1].error
    assert results[1].value is None
    assert results[0].value == {"value": 1}


# -- graceful fallback --------------------------------------------------------


def test_pool_unavailable_falls_back_to_sequential(monkeypatch, capsys):
    import repro.eval.parallel as parallel

    def broken_executor(jobs):
        raise OSError("no semaphores on this platform")

    monkeypatch.setattr(parallel, "_make_executor", broken_executor)
    results = run_sweep(
        _tasks("echo_cell", [{"value": v} for v in (1, 2)]), jobs=4,
    )
    assert [r.value["value"] for r in results] == [2, 4]
    assert "process pools unavailable" in capsys.readouterr().err


# -- cache integration --------------------------------------------------------


def test_cache_short_circuits_hits_and_stores_misses(tmp_path):
    cache = RunCache(tmp_path, tree_digest="t1")
    tasks = _tasks("echo_cell", [{"value": 1}, {"value": 2}])
    first = run_sweep(tasks, cache=cache)
    assert [r.cached for r in first] == [False, False]
    second = run_sweep(tasks, cache=cache)
    assert [r.cached for r in second] == [True, True]
    assert [r.value for r in first] == [r.value for r in second]
    assert cache.stats() == {"hits": 2, "misses": 2}


def test_cache_does_not_store_errors(tmp_path):
    cache = RunCache(tmp_path, tree_digest="t1")
    tasks = _tasks("failing_cell", [{"value": 2}])
    assert not run_sweep(tasks, cache=cache)[0].ok
    assert not run_sweep(tasks, cache=cache)[0].cached


def test_progress_counts_every_cell(tmp_path):
    cache = RunCache(tmp_path, tree_digest="t1")
    tasks = _tasks("echo_cell", [{"value": v} for v in (1, 2, 3)])
    run_sweep(tasks, cache=cache)
    seen = []
    run_sweep(
        tasks, cache=cache,
        progress=lambda done, total, result: seen.append((done, total)),
    )
    assert seen == [(1, 3), (2, 3), (3, 3)]
