"""Unit tests for per-process local clocks."""

import pytest

from repro.sim.clock import LocalClock
from repro.sim.scheduler import Scheduler


@pytest.fixture
def sched():
    return Scheduler()


def test_perfect_clock_tracks_global_time(sched):
    clock = LocalClock(sched)
    sched.run_until(12.5)
    assert clock.time() == pytest.approx(12.5)


def test_constant_skew(sched):
    clock = LocalClock(sched, skew=0.25)
    sched.run_until(10.0)
    assert clock.time() == pytest.approx(10.25)


def test_drift_accumulates(sched):
    clock = LocalClock(sched, drift=100e-6)  # 100 ppm
    sched.run_until(10_000.0)
    assert clock.time() == pytest.approx(10_001.0)


def test_roundtrip_local_global(sched):
    clock = LocalClock(sched, skew=-0.1, drift=50e-6)
    sched.run_until(500.0)
    local = clock.to_local(432.1)
    assert clock.to_global(local) == pytest.approx(432.1)


def test_two_clocks_disagree(sched):
    a = LocalClock(sched, skew=0.02)
    b = LocalClock(sched, skew=-0.03)
    sched.run_until(3.0)
    assert a.time() - b.time() == pytest.approx(0.05)
