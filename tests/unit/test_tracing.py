"""Unit tests for the structured trace recorder."""

from repro.sim.tracing import Trace


def test_record_and_query():
    trace = Trace()
    trace.record(1.0, "ping", value=1)
    trace.record(2.0, "pong", value=2)
    trace.record(3.0, "ping", value=3)
    assert trace.count("ping") == 2
    assert [e["value"] for e in trace.of_kind("ping")] == [1, 3]


def test_where_filters_on_fields():
    trace = Trace()
    trace.record(0.0, "msg", src="a", dst="b")
    trace.record(0.0, "msg", src="a", dst="c")
    assert len(trace.where("msg", dst="c")) == 1


def test_keep_kinds_limits_storage_but_not_counts():
    trace = Trace(keep_kinds={"kept"})
    trace.record(0.0, "kept", x=1)
    trace.record(0.0, "dropped", x=2)
    assert trace.count("dropped") == 1
    assert len(trace.of_kind("dropped")) == 0
    assert len(trace.of_kind("kept")) == 1


def test_subscribers_see_unstored_records():
    trace = Trace(keep_kinds=set())
    seen = []
    trace.subscribe(lambda e: seen.append(e.kind))
    trace.record(0.0, "anything")
    assert seen == ["anything"]
    assert len(trace) == 0


def test_event_get_and_getitem():
    trace = Trace()
    trace.record(5.0, "k", a=1)
    event = trace.events[0]
    assert event["a"] == 1
    assert event.get("missing", 42) == 42
    assert event.time == 5.0


def test_field_named_kind_is_allowed():
    trace = Trace()
    trace.record(0.0, "net_send", kind="keepalive")
    assert trace.of_kind("net_send")[0]["kind"] == "keepalive"


def test_counts_snapshot_is_a_copy():
    trace = Trace()
    trace.record(0.0, "a")
    snapshot = trace.counts
    snapshot["a"] += 10
    assert trace.count("a") == 1

# -- read-only views -----------------------------------------------------------


def test_events_returns_live_view_not_copy():
    trace = Trace()
    trace.record(0.0, "a")
    view = trace.events
    assert len(view) == 1
    trace.record(1.0, "a")
    assert len(view) == 2  # a window onto the trace, not a snapshot


def test_views_are_read_only():
    trace = Trace()
    trace.record(0.0, "a")
    for view in (trace.events, trace.of_kind("a")):
        assert not hasattr(view, "append")
        with __import__("pytest").raises(TypeError):
            view[0] = None


def test_view_slicing_and_iteration():
    trace = Trace()
    for i in range(5):
        trace.record(float(i), "a", i=i)
    sliced = trace.events[1:4]
    assert [e["i"] for e in sliced] == [1, 2, 3]
    assert [e["i"] for e in trace.iter_kind("a")] == [0, 1, 2, 3, 4]


def test_of_kind_unknown_is_empty():
    trace = Trace()
    assert len(trace.of_kind("nothing")) == 0
    assert list(trace.iter_kind("nothing")) == []


# -- incremental aggregates ----------------------------------------------------


def test_bytes_of_kind_sums_incrementally():
    trace = Trace()
    trace.record(0.0, "net_send", bytes=10)
    trace.record(1.0, "net_send", bytes=32)
    trace.record(2.0, "other")
    assert trace.bytes_of_kind("net_send") == 42
    assert trace.bytes_of_kind("other") == 0


def test_tally_tracks_sub_kind_count_and_bytes():
    trace = Trace()
    trace.record(0.0, "net_send", kind="keepalive", bytes=5)
    trace.record(1.0, "net_send", kind="keepalive", bytes=7)
    trace.record(2.0, "net_send", kind="event_fwd", bytes=100)
    assert trace.tally("net_send", "keepalive") == (2, 12)
    assert trace.tally("net_send", "event_fwd") == (1, 100)
    assert trace.tally("net_send", "missing") == (0, 0)
    assert sorted(trace.sub_kinds("net_send")) == ["event_fwd", "keepalive"]


def test_pair_counts_track_src_dst():
    trace = Trace(keep_kinds=set())  # aggregates work even storing nothing
    trace.record(0.0, "net_send", src="a", dst="b", kind="k", bytes=1)
    trace.record(1.0, "net_send", src="a", dst="b", kind="k", bytes=1)
    trace.record(2.0, "net_send", src="b", dst="a", kind="k", bytes=1)
    assert trace.pair_count("net_send", "a", "b") == 2
    assert trace.pair_count("net_send", "b", "a") == 1
    assert trace.pair_counts("net_send") == {("a", "b"): 2, ("b", "a"): 1}


def test_record_message_matches_record():
    """The transport's fast lane must be indistinguishable from record()."""
    slow = Trace(digest=True)
    fast = Trace(digest=True)
    slow.record(0.0, "net_send", src="a", dst="b", kind="keepalive", bytes=9)
    slow.record(1.0, "net_deliver", src="a", dst="b", kind="keepalive")
    slow.record(2.0, "net_drop", src="a", dst="c", kind="keepalive", reason="partition")
    fast.record_message(0.0, "net_send", "a", "b", "keepalive", 9)
    fast.record_message(1.0, "net_deliver", "a", "b", "keepalive")
    fast.record_message(2.0, "net_drop", "a", "c", "keepalive", reason="partition")
    assert slow.digest() == fast.digest()
    assert slow.counts == fast.counts
    assert slow.bytes_of_kind("net_send") == fast.bytes_of_kind("net_send")
    assert slow.tally("net_send", "keepalive") == fast.tally("net_send", "keepalive")
    assert slow.pair_counts("net_send") == fast.pair_counts("net_send")
    assert fast.events[0].fields == slow.events[0].fields


# -- kind-filtered subscriptions -----------------------------------------------


def test_kind_scoped_subscriber_only_sees_its_kinds():
    trace = Trace(keep_kinds=set())
    seen = []
    trace.subscribe(lambda e: seen.append(e.kind), kinds=("wanted",))
    trace.record(0.0, "wanted")
    trace.record(1.0, "ignored")
    trace.record(2.0, "wanted")
    assert seen == ["wanted", "wanted"]


def test_kind_scoped_subscription_after_records_exist():
    trace = Trace()
    trace.record(0.0, "k")
    seen = []
    trace.subscribe(lambda e: seen.append(e.time), kinds=("k",))
    trace.record(1.0, "k")
    assert seen == [1.0]


# -- digest --------------------------------------------------------------------


def test_digest_stable_for_identical_streams():
    a, b = Trace(), Trace()
    for t in (a, b):
        t.record(0.0, "x", peers={"p2", "p1"}, mapping={"b": 2, "a": 1})
        t.record(1.0, "y", values=[1, 2.5, None, True])
    assert a.digest() == b.digest()


def test_digest_differs_when_stream_differs():
    a, b = Trace(), Trace()
    a.record(0.0, "x", v=1)
    b.record(0.0, "x", v=2)
    assert a.digest() != b.digest()


def test_incremental_digest_matches_recomputed():
    streaming = Trace(digest=True)
    stored = Trace()
    for t in (streaming, stored):
        t.record(0.0, "x", v=1)
        t.record(1.0, "y", src="a", dst="b", kind="k", bytes=3)
    assert streaming.digest() == stored.digest()


def test_digest_requires_hasher_when_kinds_dropped():
    trace = Trace(keep_kinds=set())
    trace.record(0.0, "x")
    import pytest

    with pytest.raises(RuntimeError):
        trace.digest()
