"""Unit tests for the structured trace recorder."""

from repro.sim.tracing import Trace


def test_record_and_query():
    trace = Trace()
    trace.record(1.0, "ping", value=1)
    trace.record(2.0, "pong", value=2)
    trace.record(3.0, "ping", value=3)
    assert trace.count("ping") == 2
    assert [e["value"] for e in trace.of_kind("ping")] == [1, 3]


def test_where_filters_on_fields():
    trace = Trace()
    trace.record(0.0, "msg", src="a", dst="b")
    trace.record(0.0, "msg", src="a", dst="c")
    assert len(trace.where("msg", dst="c")) == 1


def test_keep_kinds_limits_storage_but_not_counts():
    trace = Trace(keep_kinds={"kept"})
    trace.record(0.0, "kept", x=1)
    trace.record(0.0, "dropped", x=2)
    assert trace.count("dropped") == 1
    assert len(trace.of_kind("dropped")) == 0
    assert len(trace.of_kind("kept")) == 1


def test_subscribers_see_unstored_records():
    trace = Trace(keep_kinds=set())
    seen = []
    trace.subscribe(lambda e: seen.append(e.kind))
    trace.record(0.0, "anything")
    assert seen == ["anything"]
    assert len(trace) == 0


def test_event_get_and_getitem():
    trace = Trace()
    trace.record(5.0, "k", a=1)
    event = trace.events[0]
    assert event["a"] == 1
    assert event.get("missing", 42) == 42
    assert event.time == 5.0


def test_field_named_kind_is_allowed():
    trace = Trace()
    trace.record(0.0, "net_send", kind="keepalive")
    assert trace.of_kind("net_send")[0]["kind"] == "keepalive"


def test_counts_snapshot_is_a_copy():
    trace = Trace()
    trace.record(0.0, "a")
    snapshot = trace.counts
    snapshot["a"] += 10
    assert trace.count("a") == 1
