"""Unit tests for byte-accurate wire sizing (the Fig. 5 cost model)."""

import pytest

from repro.core.events import Command, Event
from repro.net.message import Message
from repro.net.wire import (
    EVENT_HEADER,
    FRAME_OVERHEAD,
    MESSAGE_HEADER,
    MSS,
    PROCESS_ID_BYTES,
    ProcessIdSet,
    payload_size,
    sizeof,
    wire_size,
)


def make_event(size: int = 4) -> Event:
    return Event(sensor_id="s", seq=1, emitted_at=0.0, value=0, size_bytes=size)


def test_scalar_sizes():
    assert sizeof(None) == 1
    assert sizeof(True) == 1
    assert sizeof(3.14) == 8
    assert sizeof(42) == 8
    assert sizeof("ab") == 3
    assert sizeof(b"abcd") == 8


def test_event_size_includes_header_and_payload():
    assert sizeof(make_event(100)) == EVENT_HEADER + 100


def test_command_size():
    command = Command(actuator_id="a", seq=1, issued_at=0.0, action="x")
    assert sizeof(command) == 16 + command.size_bytes


def test_process_id_set_compact_encoding():
    ids = ProcessIdSet({"hub", "fridge", "washing-machine"})
    assert sizeof(ids) == 1 + 3 * PROCESS_ID_BYTES
    # A plain collection of the same names is bigger: names are not sent.
    assert sizeof(["hub", "fridge", "washing-machine"]) > sizeof(ids)


def test_collections_and_dicts():
    assert sizeof([1, 2]) == 2 + 16
    assert sizeof((1.0,)) == 2 + 8
    assert sizeof({"k": 1}) == 2 + sizeof("k") + 8


def test_unknown_type_rejected():
    with pytest.raises(TypeError):
        sizeof(object())


def test_message_payload_size():
    message = Message(kind="k", src="a", dst="b", payload={"event": make_event(4)})
    assert payload_size(message) == MESSAGE_HEADER + EVENT_HEADER + 4


def test_small_message_single_frame():
    message = Message(kind="k", src="a", dst="b", payload={"x": 1})
    assert wire_size(message) == MESSAGE_HEADER + 8 + FRAME_OVERHEAD


def test_large_event_pays_per_segment_framing():
    big = Message(kind="k", src="a", dst="b", payload={"event": make_event(20_480)})
    app_bytes = payload_size(big)
    segments = -(-app_bytes // MSS)
    assert segments > 1
    assert wire_size(big) == app_bytes + segments * FRAME_OVERHEAD


def test_gapless_metadata_grows_with_sets():
    def msg(n: int) -> Message:
        ids = ProcessIdSet({f"p{i}" for i in range(n)})
        return Message(kind="gapless_fwd", src="a", dst="b",
                       payload={"event": make_event(4), "S": ids, "V": ids})

    assert wire_size(msg(5)) - wire_size(msg(1)) == 8 * PROCESS_ID_BYTES


def test_fig5_crossover_naive_broadcast_vs_ring():
    """At one receiving process the ring (with S/V metadata) costs more
    than naive broadcast; at two receiving processes it costs less."""
    n = 5
    event = make_event(4)
    ids_full = ProcessIdSet({f"p{i}" for i in range(n)})
    ring_messages = []
    for hop in range(1, n + 1):
        seen = ProcessIdSet({f"p{i}" for i in range(hop)})
        ring_messages.append(
            Message(kind="gapless_fwd", src="a", dst="b",
                    payload={"sensor": "s", "event": event, "S": seen, "V": ids_full})
        )
    ring_bytes = sum(wire_size(m) for m in ring_messages)

    bcast = Message(kind="nbcast", src="a", dst="b",
                    payload={"sensor": "s", "event": event})
    one_receiver = (n - 1) * wire_size(bcast)
    two_receivers = 2 * (n - 1) * wire_size(bcast)

    assert one_receiver < ring_bytes < two_receivers


# -- per-message size caching --------------------------------------------------


def test_payload_and_wire_size_cached_per_message():
    message = Message("k", "a", "b", {"x": 1})
    first = wire_size(message)
    assert message._wire_bytes == first
    assert message._payload_bytes == payload_size(message)
    # Messages are immutable once sent; the cache makes that contract
    # load-bearing — re-sizing the same object must not recompute.
    message.payload["x"] = 999999
    assert wire_size(message) == first


def test_distinct_messages_sized_independently():
    small = Message("k", "a", "b", {"x": 1})
    big = Message("k", "a", "b", {"x": "y" * 500})
    assert wire_size(big) > wire_size(small)


def test_bool_sized_as_one_byte_via_fast_path():
    # bool is an int subclass: exact-type dispatch must still give 1 byte,
    # both directly and through a message payload.
    assert sizeof(True) == 1
    assert payload_size(Message("k", "a", "b", {"flag": True})) == \
        MESSAGE_HEADER + 1


def test_subclass_payload_values_fall_back_to_general_path():
    class MyInt(int):
        pass

    assert sizeof(MyInt(7)) == 8
    assert payload_size(Message("k", "a", "b", {"v": MyInt(7)})) == \
        MESSAGE_HEADER + 8
