"""Quiet and sampling trace modes, and the channel/device fast lanes."""

import pytest

from repro.sim.tracing import Trace


def fill(trace: Trace, n: int = 10) -> Trace:
    channel = trace.message_channel("net_send", "a", "b")
    for i in range(n):
        channel.record(float(i), "keepalive", 100)
        trace.record_device(float(i), "radio_emit", "sensor", "s1", None, i)
    return trace


def test_quiet_keeps_aggregates_but_stores_nothing():
    trace = fill(Trace(quiet=True))
    assert trace.count("net_send") == 10
    assert trace.bytes_of_kind("net_send") == 1000
    assert trace.tally("net_send", "keepalive") == (10, 1000)
    assert trace.pair_count("net_send", "a", "b") == 10
    assert trace.count("radio_emit") == 10
    assert len(trace.events) == 0
    assert len(trace.of_kind("net_send")) == 0


def test_quiet_refuses_digest_subscribers_and_digest_flag():
    with pytest.raises(ValueError):
        Trace(quiet=True, digest=True)
    trace = Trace(quiet=True)
    with pytest.raises(RuntimeError):
        trace.subscribe(lambda e: None)
    with pytest.raises(RuntimeError):
        trace.digest()


def test_sampling_stores_every_nth_but_counts_all():
    trace = Trace(sample_every=3)
    for i in range(10):
        trace.record(float(i), "tick", n=i)
    assert trace.count("tick") == 10
    kept = [e["n"] for e in trace.of_kind("tick")]
    assert kept == [0, 3, 6, 9]


def test_sampling_rejects_bad_interval_and_sample_one_is_full():
    with pytest.raises(ValueError):
        Trace(sample_every=0)
    trace = Trace(sample_every=1)
    for i in range(5):
        trace.record(float(i), "tick", n=i)
    assert len(trace.of_kind("tick")) == 5


def test_sampled_digest_equals_unsampled_digest():
    """The streaming hash covers every record, kept or not — sampling must
    not change what the digest sees."""
    full = fill(Trace(digest=True))
    sampled = fill(Trace(digest=True, sample_every=4))
    assert full.digest() == sampled.digest()
    assert len(sampled.of_kind("radio_emit")) < len(full.of_kind("radio_emit"))


def test_digest_requires_hasher_when_stream_is_partial():
    trace = fill(Trace(sample_every=2))
    with pytest.raises(RuntimeError):
        trace.digest()
    trace = fill(Trace(keep_kinds=set()))
    with pytest.raises(RuntimeError):
        trace.digest()


def test_channel_records_match_generic_record_message():
    via_channel = Trace(digest=True)
    channel = via_channel.message_channel("net_send", "a", "b")
    channel.record(1.0, "keepalive", 90)
    channel.record(2.0, "sync", 120, "retry")

    via_generic = Trace(digest=True)
    via_generic.record_message(1.0, "net_send", "a", "b", "keepalive", 90)
    via_generic.record_message(2.0, "net_send", "a", "b", "sync", 120, "retry")

    assert via_channel.digest() == via_generic.digest()
    assert via_channel.tally("net_send", "sync") == via_generic.tally(
        "net_send", "sync"
    )
    assert [e.fields for e in via_channel.of_kind("net_send")] == [
        e.fields for e in via_generic.of_kind("net_send")
    ]


def test_record_device_matches_generic_record():
    fast = Trace(digest=True)
    fast.record_device(1.0, "radio_lost", "sensor", "s1", "p1", 7)
    fast.record_device(2.0, "command_sent", "actuator", "a1", "p2",
                       action="on")

    generic = Trace(digest=True)
    generic.record(1.0, "radio_lost", sensor="s1", process="p1", seq=7)
    generic.record(2.0, "command_sent", actuator="a1", process="p2",
                   action="on")

    assert fast.digest() == generic.digest()
    assert [e.fields for e in fast.events] == [e.fields for e in generic.events]


def test_kind_scoped_subscriber_sees_channel_records():
    trace = Trace(keep_kinds=set())
    seen = []
    trace.subscribe(seen.append, kinds=("net_send",))
    channel = trace.message_channel("net_send", "a", "b")
    channel.record(1.0, "keepalive", 90)
    trace.record_device(1.0, "radio_emit", "sensor", "s1")  # not subscribed
    assert [e.kind for e in seen] == ["net_send"]
    assert seen[0]["bytes"] == 90


def test_pair_counts_skip_precreated_empty_cells():
    trace = Trace()
    trace.message_channel("net_send", "a", "b")  # creates a zero cell
    channel = trace.message_channel("net_send", "a", "c")
    channel.record(1.0, "m", 10)
    assert trace.pair_counts("net_send") == {("a", "c"): 1}
    assert trace.pair_count("net_send", "a", "b") == 0
