"""Unit tests for the declarative fault plan."""

import pytest

from repro.sim.faults import FaultPlan
from repro.sim.scheduler import Scheduler


class RecordingTarget:
    def __init__(self):
        self.scheduler = Scheduler()
        self.calls: list[tuple] = []

    def __getattr__(self, name):
        def record(*args):
            self.calls.append((self.scheduler.now, name, args))

        return record


def test_builder_accumulates_actions():
    plan = (FaultPlan()
            .crash("hub", at=10.0)
            .recover("hub", at=20.0)
            .partition([["a"], ["b"]], at=5.0)
            .heal(at=8.0)
            .fail_sensor("s", at=1.0)
            .recover_sensor("s", at=2.0)
            .fail_actuator("x", at=3.0)
            .recover_actuator("x", at=4.0)
            .set_link_loss("s", "hub", 0.5, at=6.0))
    assert len(plan) == 9


def test_apply_schedules_in_time_order():
    target = RecordingTarget()
    plan = FaultPlan().crash("hub", at=10.0).recover("hub", at=20.0)
    plan.apply(target)
    target.scheduler.run()
    assert target.calls == [
        (10.0, "crash_process", ("hub",)),
        (20.0, "recover_process", ("hub",)),
    ]


def test_partition_groups_are_frozen_copies():
    plan = FaultPlan()
    groups = [["a", "b"], ["c"]]
    plan.partition(groups, at=1.0)
    groups[0].append("z")  # later mutation must not leak into the plan
    assert plan.actions[0].args == ((("a", "b"), ("c",)),)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        FaultPlan().crash("hub", at=-1.0)


def test_merge_plans():
    a = FaultPlan().crash("x", at=1.0)
    b = FaultPlan().recover("x", at=2.0)
    merged = a.merge(b)
    assert len(merged) == 2
    assert len(a) == 1 and len(b) == 1
