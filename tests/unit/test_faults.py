"""Unit tests for the declarative fault plan."""

import json

import pytest

from repro.sim.faults import FaultPlan
from repro.sim.scheduler import Scheduler


class RecordingTarget:
    def __init__(self):
        self.scheduler = Scheduler()
        self.calls: list[tuple] = []

    def __getattr__(self, name):
        def record(*args):
            self.calls.append((self.scheduler.now, name, args))

        return record


def test_builder_accumulates_actions():
    plan = (FaultPlan()
            .crash("hub", at=10.0)
            .recover("hub", at=20.0)
            .partition([["a"], ["b"]], at=5.0)
            .heal(at=8.0)
            .fail_sensor("s", at=1.0)
            .recover_sensor("s", at=2.0)
            .fail_actuator("x", at=3.0)
            .recover_actuator("x", at=4.0)
            .set_link_loss("s", "hub", 0.5, at=6.0))
    assert len(plan) == 9


def test_apply_schedules_in_time_order():
    target = RecordingTarget()
    plan = FaultPlan().crash("hub", at=10.0).recover("hub", at=20.0)
    plan.apply(target)
    target.scheduler.run()
    assert target.calls == [
        (10.0, "crash_process", ("hub",)),
        (20.0, "recover_process", ("hub",)),
    ]


def test_partition_groups_are_frozen_copies():
    plan = FaultPlan()
    groups = [["a", "b"], ["c"]]
    plan.partition(groups, at=1.0)
    groups[0].append("z")  # later mutation must not leak into the plan
    assert plan.actions[0].args == ((("a", "b"), ("c",)),)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        FaultPlan().crash("hub", at=-1.0)


def test_merge_plans():
    a = FaultPlan().crash("x", at=1.0)
    b = FaultPlan().recover("x", at=2.0)
    merged = a.merge(b)
    assert len(merged) == 2
    assert len(a) == 1 and len(b) == 1


def test_same_timestamp_fires_in_insertion_order():
    target = RecordingTarget()
    plan = (FaultPlan()
            .recover("hub", at=10.0)
            .crash("tv", at=10.0)
            .heal(at=10.0))
    plan.apply(target)
    target.scheduler.run()
    assert [name for _, name, _ in target.calls] == [
        "recover_process", "crash_process", "heal_partition",
    ]


def test_sub_plan_preserves_relative_order():
    # dropping actions (as the shrinker does) must not reorder survivors
    full = (FaultPlan()
            .crash("a", at=5.0)
            .crash("b", at=5.0)
            .recover("a", at=5.0))
    sub = FaultPlan(actions=[full.actions[0], full.actions[2]])
    target = RecordingTarget()
    sub.apply(target)
    target.scheduler.run()
    assert [name for _, name, _ in target.calls] == [
        "crash_process", "recover_process",
    ]


def test_to_dicts_round_trips_through_json():
    plan = (FaultPlan()
            .crash("hub", at=10.0)
            .partition([["a", "b"], ["c"]], at=12.0)
            .heal(at=15.0)
            .set_link_loss("s", "hub", 0.25, at=20.0)
            .recover("hub", at=30.0))
    wire = json.loads(json.dumps(plan.to_dicts()))
    rebuilt = FaultPlan.from_dicts(wire)
    assert rebuilt.actions == plan.actions
