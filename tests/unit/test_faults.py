"""Unit tests for the declarative fault plan."""

import json

import pytest

from repro.sim.faults import FaultPlan
from repro.sim.scheduler import Scheduler


class RecordingTarget:
    def __init__(self):
        self.scheduler = Scheduler()
        self.calls: list[tuple] = []

    def __getattr__(self, name):
        def record(*args):
            self.calls.append((self.scheduler.now, name, args))

        return record


def test_builder_accumulates_actions():
    plan = (FaultPlan()
            .crash("hub", at=10.0)
            .recover("hub", at=20.0)
            .partition([["a"], ["b"]], at=5.0)
            .heal(at=8.0)
            .fail_sensor("s", at=1.0)
            .recover_sensor("s", at=2.0)
            .fail_actuator("x", at=3.0)
            .recover_actuator("x", at=4.0)
            .set_link_loss("s", "hub", 0.5, at=6.0))
    assert len(plan) == 9


def test_apply_schedules_in_time_order():
    target = RecordingTarget()
    plan = FaultPlan().crash("hub", at=10.0).recover("hub", at=20.0)
    plan.apply(target)
    target.scheduler.run()
    assert target.calls == [
        (10.0, "crash_process", ("hub",)),
        (20.0, "recover_process", ("hub",)),
    ]


def test_partition_groups_are_frozen_copies():
    plan = FaultPlan()
    groups = [["a", "b"], ["c"]]
    plan.partition(groups, at=1.0)
    groups[0].append("z")  # later mutation must not leak into the plan
    assert plan.actions[0].args == ((("a", "b"), ("c",)),)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        FaultPlan().crash("hub", at=-1.0)


def test_merge_plans():
    a = FaultPlan().crash("x", at=1.0)
    b = FaultPlan().recover("x", at=2.0)
    merged = a.merge(b)
    assert len(merged) == 2
    assert len(a) == 1 and len(b) == 1


def test_same_timestamp_fires_in_insertion_order():
    target = RecordingTarget()
    plan = (FaultPlan()
            .recover("hub", at=10.0)
            .crash("tv", at=10.0)
            .heal(at=10.0))
    plan.apply(target)
    target.scheduler.run()
    assert [name for _, name, _ in target.calls] == [
        "recover_process", "crash_process", "heal_partition",
    ]


def test_sub_plan_preserves_relative_order():
    # dropping actions (as the shrinker does) must not reorder survivors
    full = (FaultPlan()
            .crash("a", at=5.0)
            .crash("b", at=5.0)
            .recover("a", at=5.0))
    sub = FaultPlan(actions=[full.actions[0], full.actions[2]])
    target = RecordingTarget()
    sub.apply(target)
    target.scheduler.run()
    assert [name for _, name, _ in target.calls] == [
        "crash_process", "recover_process",
    ]


def test_to_dicts_round_trips_through_json():
    plan = (FaultPlan()
            .crash("hub", at=10.0)
            .partition([["a", "b"], ["c"]], at=12.0)
            .heal(at=15.0)
            .set_link_loss("s", "hub", 0.25, at=20.0)
            .recover("hub", at=30.0))
    wire = json.loads(json.dumps(plan.to_dicts()))
    rebuilt = FaultPlan.from_dicts(wire)
    assert rebuilt.actions == plan.actions


def _every_action_plan() -> FaultPlan:
    """One plan exercising every builder, device faults included."""
    return (FaultPlan()
            .crash("hub", at=1.0)
            .recover("hub", at=2.0)
            .partition([["a"], ["b"]], at=3.0)
            .heal(at=4.0)
            .fail_sensor("m1", at=5.0)
            .recover_sensor("m1", at=6.0)
            .fail_actuator("x", at=7.0)
            .recover_actuator("x", at=8.0)
            .set_link_loss("m1", "hub", 0.5, at=9.0)
            .stick_sensor("m1", True, at=10.0)
            .unstick_sensor("m1", at=11.0)
            .drift_sensor("t1", 0.02, at=12.0)
            .stop_drift("t1", at=13.0)
            .flap_link("m1", 60.0, 0.5, at=14.0)
            .stop_flap("m1", at=15.0)
            .ghost_events("d1", 40.0, at=16.0)
            .stop_ghost("d1", at=17.0)
            .brownout("s1", 0.1, at=18.0)
            .replace_battery("s1", at=19.0))


def test_every_action_kind_round_trips_through_json():
    plan = _every_action_plan()
    wire = json.loads(json.dumps(plan.to_dicts()))
    rebuilt = FaultPlan.from_dicts(wire)
    assert rebuilt.actions == plan.actions
    # And the round trip is stable: serializing again yields the same wire.
    assert rebuilt.to_dicts() == plan.to_dicts()


def test_device_fault_actions_schedule_expected_calls():
    target = RecordingTarget()
    (FaultPlan()
     .stick_sensor("m1", False, at=1.0)
     .flap_link("m1", 30.0, 0.4, at=2.0)
     .brownout("s1", 0.05, at=3.0)
     .ghost_events("d1", 12.0, at=4.0)
     .drift_sensor("t1", -0.01, at=5.0)).apply(target)
    target.scheduler.run()
    assert target.calls == [
        (1.0, "stick_sensor", ("m1", False)),
        (2.0, "flap_link", ("m1", 30.0, 0.4)),
        (3.0, "brownout", ("s1", 0.05)),
        (4.0, "ghost_events", ("d1", 12.0)),
        (5.0, "drift_sensor", ("t1", -0.01)),
    ]


def test_normalize_round_trip_stability_on_device_plans():
    """normalize() of a generator-shaped plan is idempotent and survives
    the JSON wire format."""
    from repro.sim.chaos import normalize

    plan = _every_action_plan()
    normalized = FaultPlan(actions=normalize(plan.actions))
    again = normalize(FaultPlan.from_dicts(
        json.loads(json.dumps(normalized.to_dicts()))
    ).actions)
    assert again == normalized.actions
    # A well-formed plan (every start paired with its clear) loses nothing.
    assert len(normalized) == len(plan)
