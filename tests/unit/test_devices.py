"""Unit tests for sensors, actuators, batteries, and the device catalog."""

import pytest

from repro.core.events import Command
from repro.devices.actuator import Actuator
from repro.devices.actuator import test_and_set as tas  # alias: pytest must not collect it
from repro.devices.battery import Battery
from repro.devices.catalog import SENSOR_CATALOG, make_sensor, technology_named
from repro.devices.sensor import PollSensor, PushSensor
from repro.net.radio import RadioNetwork, ZWAVE
from repro.sim.random import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace


@pytest.fixture
def rig():
    sched = Scheduler()
    trace = Trace()
    radio = RadioNetwork(sched, RandomSource(3), trace)
    return sched, trace, radio


def make_push(rig, name="m1", kind="motion"):
    sched, trace, radio = rig
    sensor = make_sensor(kind, name, scheduler=sched, radio=radio,
                         rng=RandomSource(1), trace=trace)
    return sensor


# -- push sensors ----------------------------------------------------------------------


def test_push_sensor_emits_with_increasing_seq(rig):
    sensor = make_push(rig)
    e1 = sensor.emit(True)
    e2 = sensor.emit(False)
    assert (e1.seq, e2.seq) == (1, 2)
    assert sensor.events_emitted == 2


def test_failed_sensor_reports_no_events(rig):
    sensor = make_push(rig)
    sensor.fail()
    assert sensor.emit(True) is None
    sensor.recover()
    assert sensor.emit(True) is not None


def test_periodic_emission_rate(rig):
    sched, trace, radio = rig
    sensor = make_push(rig)
    assert isinstance(sensor, PushSensor)
    sensor.start_periodic(10.0)
    sched.run_until(5.0)
    assert sensor.events_emitted == 50
    sensor.stop_periodic()
    sched.run_until(10.0)
    assert sensor.events_emitted == 50


def test_periodic_rate_validation(rig):
    sensor = make_push(rig)
    with pytest.raises(ValueError):
        sensor.start_periodic(0.0)


def test_depleted_battery_silences_sensor(rig):
    sensor = make_push(rig)
    sensor.battery.capacity = 1.0
    sensor.emit(True)  # drains 0.6
    sensor.emit(True)  # drains past capacity
    assert sensor.battery.depleted or sensor.battery.level < 0.5
    sensor.battery.drained = 2.0
    assert sensor.emit(True) is None


# -- poll sensors ---------------------------------------------------------------------------


def test_poll_sensor_serves_and_responds(rig):
    sched, trace, radio = rig
    sensor = make_sensor("temperature", "t1", scheduler=sched, radio=radio,
                         rng=RandomSource(1), trace=trace)
    assert isinstance(sensor, PollSensor)
    responses = []
    sensor.receive_poll(responses.append)
    assert sensor.busy
    sched.run()
    assert len(responses) == 1
    assert responses[0].value == pytest.approx(21.0, abs=3.0)
    assert sensor.poll_stats.served == 1


def test_concurrent_poll_silently_dropped(rig):
    sched, trace, radio = rig
    sensor = make_sensor("temperature", "t1", scheduler=sched, radio=radio,
                         rng=RandomSource(1), trace=trace)
    responses = []
    sensor.receive_poll(responses.append)
    sensor.receive_poll(responses.append)  # concurrent: dropped
    sched.run()
    assert len(responses) == 1
    assert sensor.poll_stats.dropped_busy == 1
    assert trace.count("poll_dropped_busy") == 1


def test_failed_poll_sensor_does_not_respond(rig):
    sched, trace, radio = rig
    sensor = make_sensor("temperature", "t1", scheduler=sched, radio=radio,
                         rng=RandomSource(1), trace=trace)
    sensor.fail()
    responses = []
    sensor.receive_poll(responses.append)
    sched.run()
    assert responses == []
    assert sensor.poll_stats.dropped_failed == 1


def test_poll_glitch_returns_nothing(rig):
    sched, trace, radio = rig
    sensor = make_sensor("temperature", "t1", scheduler=sched, radio=radio,
                         rng=RandomSource(1), trace=trace, failure_rate=1.0)
    got = []
    sensor.receive_poll(got.append)
    sched.run()
    assert got == [None]
    assert trace.count("poll_glitch") == 1


def test_poll_duration_below_service_time(rig):
    sched, trace, radio = rig
    sensor = make_sensor("humidity", "h1", scheduler=sched, radio=radio,
                         rng=RandomSource(1), trace=trace)
    done = []
    sensor.receive_poll(lambda e: done.append(sched.now))
    sched.run()
    assert 0.6 * 4.0 <= done[0] <= 4.0


def test_service_time_validation(rig):
    sched, trace, radio = rig
    with pytest.raises(ValueError):
        make_sensor("temperature", "t1", scheduler=sched, radio=radio,
                    rng=RandomSource(1), trace=trace, service_time=0.0)


# -- catalog ---------------------------------------------------------------------------------------


def test_catalog_covers_table3_classes():
    small = [s for s in SENSOR_CATALOG.values() if s.size_class == "small"]
    large = [s for s in SENSOR_CATALOG.values() if s.size_class == "large"]
    assert all(4 <= s.event_size <= 8 for s in small)
    assert all(1024 <= s.event_size <= 20_480 for s in large)
    assert {"temperature", "motion", "door", "camera", "microphone"} <= set(SENSOR_CATALOG)


def test_fig8_poll_periods_match_paper():
    assert SENSOR_CATALOG["temperature"].service_time == 0.6
    assert SENSOR_CATALOG["luminance"].service_time == 0.6
    assert SENSOR_CATALOG["humidity"].service_time == 4.0
    assert SENSOR_CATALOG["uv"].service_time == 5.0
    # App epochs are 3x the polling period (Section 8.5).
    assert SENSOR_CATALOG["temperature"].default_epoch == pytest.approx(1.8)


def test_unknown_kind_and_technology_rejected(rig):
    sched, trace, radio = rig
    with pytest.raises(KeyError):
        make_sensor("quantum", "q1", scheduler=sched, radio=radio,
                    rng=RandomSource(1), trace=trace)
    with pytest.raises(KeyError):
        technology_named("carrier-pigeon")


# -- actuators -------------------------------------------------------------------------------------


def make_actuator(rig, **kwargs) -> Actuator:
    sched, trace, radio = rig
    return Actuator("light", scheduler=sched, radio=radio, trace=trace,
                    technology=ZWAVE, **kwargs)


def cmd(action="set", value=True, seq=1, by="app@p") -> Command:
    return Command(actuator_id="light", seq=seq, issued_at=0.0,
                   action=action, value=value, issued_by=by)


def test_actuator_applies_commands(rig):
    actuator = make_actuator(rig)
    actuator.handle_command(cmd(value=True))
    assert actuator.state is True
    assert len(actuator.applied_commands) == 1


def test_failed_actuator_ignores_commands(rig):
    actuator = make_actuator(rig)
    actuator.fail()
    actuator.handle_command(cmd())
    assert actuator.state is None
    actuator.recover()
    actuator.handle_command(cmd())
    assert actuator.state is True


def test_duplicate_actuation_detection(rig):
    actuator = make_actuator(rig)
    actuator.handle_command(cmd(seq=1))
    actuator.handle_command(cmd(seq=2))
    actuator.handle_command(cmd(action="set", value=False, seq=3))
    assert actuator.duplicate_actuations() == 1


def test_test_and_set_semantics(rig):
    actuator = make_actuator(rig, supports_test_and_set=True,
                             initial_state="idle")
    actuator.handle_command(cmd(action="brew", value=tas("idle", "brewing")))
    assert actuator.state == "brewing"
    # A second concurrent brew is rejected: the state moved on.
    actuator.handle_command(cmd(action="brew", value=tas("idle", "brewing"), seq=2))
    assert actuator.state == "brewing"
    rejected = [r for r in actuator.history if not r.applied]
    assert len(rejected) == 1


def test_test_and_set_requires_support(rig):
    actuator = make_actuator(rig)
    with pytest.raises(ValueError):
        actuator.handle_command(cmd(value=tas(None, "x")))


# -- battery ---------------------------------------------------------------------------------------


def test_battery_levels():
    battery = Battery(capacity=10.0)
    assert battery.level == 1.0
    battery.drain(5.0)
    assert battery.level == 0.5
    battery.drain(10.0)
    assert battery.level == 0.0
    assert battery.depleted


def test_battery_negative_drain_rejected():
    with pytest.raises(ValueError):
        Battery().drain(-1.0)


def test_battery_lifetime_ratio():
    battery = Battery()
    battery.drain(50.0)
    assert battery.projected_lifetime_ratio(100.0) == 2.0
    fresh = Battery()
    assert fresh.projected_lifetime_ratio(100.0) == float("inf")


def test_battery_lifetime_ratio_rejects_zero_and_negative_reference():
    battery = Battery()
    battery.drain(50.0)
    with pytest.raises(ValueError):
        battery.projected_lifetime_ratio(0.0)
    with pytest.raises(ValueError):
        battery.projected_lifetime_ratio(-10.0)
    # A fresh battery still validates the reference before returning inf.
    with pytest.raises(ValueError):
        Battery().projected_lifetime_ratio(0.0)


def test_battery_lifetime_ratio_depleted():
    battery = Battery(capacity=10.0)
    battery.drain(10.0)
    assert battery.depleted
    assert battery.projected_lifetime_ratio(5.0) == 0.5


def test_battery_weak_band_and_brownout():
    battery = Battery(capacity=100.0)
    assert not battery.weak
    battery.brownout_to(0.1)
    assert battery.level == pytest.approx(0.1)
    assert battery.weak
    with pytest.raises(ValueError):
        battery.brownout_to(0.5)  # cannot regain charge
    with pytest.raises(ValueError):
        battery.brownout_to(1.5)  # out of range
    battery.brownout_to(0.0)
    assert battery.depleted and not battery.weak  # dead is not "weak"
    battery.replace()
    assert battery.level == 1.0 and not battery.weak


# -- soft device faults ---------------------------------------------------------------


def test_stuck_sensor_reports_fixed_value(rig):
    sensor = make_push(rig)
    sensor.stick(True)
    assert sensor.stuck
    assert sensor.emit(False).value is True
    sensor.unstick()
    assert not sensor.stuck
    assert sensor.emit(False).value is False


def test_drift_offsets_numeric_readings_only(rig):
    sched, trace, radio = rig
    sensor = make_push(rig)
    sensor.set_drift(0.5)
    assert sensor.drifting
    sched.run_until(10.0)
    # Booleans never drift.
    assert sensor.emit(True).value is True
    assert sensor.emit(3.0).value == pytest.approx(3.0 + 0.5 * 10.0)
    sensor.clear_drift()
    assert not sensor.drifting
    assert sensor.emit(3.0).value == pytest.approx(3.0)


def test_stuck_wins_over_drift(rig):
    sched, trace, radio = rig
    sensor = make_push(rig)
    sensor.set_drift(1.0)
    sched.run_until(5.0)
    sensor.stick(42.0)
    assert sensor.emit(3.0).value == 42.0


def test_weak_battery_brownout_drops_push_emissions(rig):
    sched, trace, radio = rig
    sensor = make_push(rig)
    sensor.battery.brownout_to(0.01)  # drop probability 0.95
    results = [sensor.emit(True) for _ in range(40)]
    dropped = sum(1 for r in results if r is None)
    assert dropped > 20
    assert trace.count("sensor_brownout_drop") == dropped
    sensor.battery.replace()
    assert sensor.emit(True) is not None


def test_healthy_battery_never_brownout_drops(rig):
    sensor = make_push(rig)
    for _ in range(50):
        assert sensor.emit(True) is not None


def test_weak_battery_brownout_drops_polls(rig):
    sched, trace, radio = rig
    sensor = make_sensor("temperature", "t1", scheduler=sched, radio=radio,
                         rng=RandomSource(1), trace=trace)
    sensor.battery.brownout_to(0.0001)
    responses = []
    for _ in range(10):
        sensor.receive_poll(responses.append)
        sched.run()
    assert responses.count(None) >= 8
    assert trace.count("poll_brownout") == responses.count(None)
