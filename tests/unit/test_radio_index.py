"""Fan-out-index invalidation: mid-run reconfiguration must behave exactly
as if the radio had been built in the new state (the index is pure cache)."""

import pytest

from repro.core.events import Command, Event
from repro.net.radio import IP, RadioNetwork, ZWAVE
from repro.sim.random import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace


class StubListener:
    def __init__(self, name: str):
        self.name = name
        self.alive = True
        self.events: list[Event] = []

    def on_sensor_event(self, event: Event) -> None:
        self.events.append(event)


class StubPollSensor:
    def __init__(self, name: str):
        self.name = name
        self.polls = 0
        self.busy = False

    def receive_poll(self, respond):
        if self.busy:
            return
        self.polls += 1
        respond(Event(sensor_id=self.name, seq=self.polls, emitted_at=0.0,
                      value=21.0, size_bytes=4))


class StubActuator:
    def __init__(self, name: str):
        self.name = name
        self.commands: list[Command] = []

    def handle_command(self, command: Command) -> None:
        self.commands.append(command)


def make_radio(seed: int = 5):
    sched = Scheduler()
    radio = RadioNetwork(sched, RandomSource(seed), Trace())
    return sched, radio


def ev(seq: int) -> Event:
    return Event(sensor_id="s", seq=seq, emitted_at=0.0, value=1, size_bytes=4)


def delivery_sets(radio, sched, listeners, n_events):
    for seq in range(n_events):
        radio.emit("s", ev(seq))
    sched.run()
    return {l.name: [e.seq for e in l.events] for l in listeners}


def test_connect_after_emit_joins_the_fanout():
    sched, radio = make_radio()
    a, b = StubListener("a"), StubListener("b")
    radio.register_listener(a)
    radio.register_listener(b)
    radio.connect("s", "a", IP, loss_rate=0.0)
    radio.emit("s", ev(1))
    sched.run()
    # The index was built with only the a-link; connect must invalidate it.
    radio.connect("s", "b", IP, loss_rate=0.0)
    radio.emit("s", ev(2))
    sched.run()
    assert [e.seq for e in a.events] == [1, 2]
    assert [e.seq for e in b.events] == [2]


def test_disconnect_after_emit_leaves_the_fanout():
    sched, radio = make_radio()
    a, b = StubListener("a"), StubListener("b")
    for listener in (a, b):
        radio.register_listener(listener)
        radio.connect("s", listener.name, IP, loss_rate=0.0)
    radio.emit("s", ev(1))
    sched.run()
    radio.disconnect("s", "b")
    radio.emit("s", ev(2))
    sched.run()
    assert [e.seq for e in a.events] == [1, 2]
    assert [e.seq for e in b.events] == [1]


def test_set_link_loss_applies_to_already_indexed_link():
    sched, radio = make_radio()
    a = StubListener("a")
    radio.register_listener(a)
    radio.connect("s", "a", IP, loss_rate=0.0)
    radio.emit("s", ev(1))
    sched.run()
    # Total loss mid-run: nothing may arrive afterwards.
    radio.set_link_loss("s", "a", 1.0)
    radio.emit("s", ev(2))
    sched.run()
    radio.set_link_loss("s", "a", 0.0)
    radio.emit("s", ev(3))
    sched.run()
    assert [e.seq for e in a.events] == [1, 3]


def test_set_link_enabled_toggles_mid_run():
    sched, radio = make_radio()
    a = StubListener("a")
    radio.register_listener(a)
    radio.connect("s", "a", IP, loss_rate=0.0)
    radio.emit("s", ev(1))
    sched.run()
    radio.set_link_enabled("s", "a", False)
    assert radio.reachable_processes("s") == []
    radio.emit("s", ev(2))
    sched.run()
    radio.set_link_enabled("s", "a", True)
    radio.emit("s", ev(3))
    sched.run()
    assert [e.seq for e in a.events] == [1, 3]


def test_set_link_enabled_requires_existing_link():
    _sched, radio = make_radio()
    with pytest.raises(KeyError):
        radio.set_link_enabled("s", "nope", False)


def test_midrun_reconfig_matches_fresh_network_deliveries():
    """A reconfigured radio delivers exactly what a fresh one in the same
    final state delivers (deterministic 0.0-loss links: no draws consumed)."""
    def fresh(seed):
        sched, radio = make_radio(seed)
        listeners = [StubListener(n) for n in ("a", "b", "c")]
        for listener in listeners:
            radio.register_listener(listener)
        return sched, radio, listeners

    sched1, radio1, listeners1 = fresh(7)
    radio1.connect("s", "a", IP, loss_rate=0.0)
    radio1.connect("s", "b", IP, loss_rate=0.0)
    # Mid-run: drop b, add c — after one event has already been indexed.
    radio1.emit("s", ev(0))
    sched1.run()
    radio1.disconnect("s", "b")
    radio1.connect("s", "c", IP, loss_rate=0.0)
    for listener in listeners1:
        listener.events.clear()
    got1 = delivery_sets(radio1, sched1, listeners1, 3)

    # Fresh network already in the final state; one warm-up emission keeps
    # the shared jitter stream aligned (two enabled links either way).
    sched2, radio2, listeners2 = fresh(7)
    radio2.connect("s", "a", IP, loss_rate=0.0)
    radio2.connect("s", "c", IP, loss_rate=0.0)
    radio2.emit("s", ev(0))
    sched2.run()
    for listener in listeners2:
        listener.events.clear()
    got2 = delivery_sets(radio2, sched2, listeners2, 3)

    assert got1 == got2
    assert got1["b"] == []


def test_trace_digest_stable_across_identical_midrun_reconfigs():
    def run():
        sched = Scheduler()
        trace = Trace(digest=True)
        radio = RadioNetwork(sched, RandomSource(3), trace)
        a, b = StubListener("a"), StubListener("b")
        radio.register_listener(a)
        radio.register_listener(b)
        radio.connect("s", "a", ZWAVE, loss_rate=0.3)
        radio.connect("s", "b", ZWAVE, loss_rate=0.3)
        for seq in range(50):
            radio.emit("s", ev(seq))
            if seq == 20:
                radio.set_link_loss("s", "a", 0.7)
            if seq == 30:
                radio.disconnect("s", "b")
            if seq == 40:
                radio.connect("s", "b", ZWAVE, loss_rate=0.1)
            sched.run()
        return trace.digest()

    assert run() == run()


def test_late_listener_registration_invalidates_fanout():
    sched, radio = make_radio()
    radio.connect("s", "a", IP, loss_rate=0.0)
    radio.emit("s", ev(1))  # builds an index with no resolvable listener
    sched.run()
    a = StubListener("a")
    radio.register_listener(a)
    radio.emit("s", ev(2))
    sched.run()
    assert [e.seq for e in a.events] == [2]


def test_late_device_registration_reaches_poll_and_command_paths():
    sched, radio = make_radio()
    a = StubListener("a")
    radio.register_listener(a)
    radio.connect("t", "a", IP, loss_rate=0.0)
    responses = []
    # Poll before the sensor exists: consumed silently, as ever.
    radio.send_poll("a", "t", responses.append)
    sched.run()
    assert responses == []
    sensor = StubPollSensor("t")
    radio.register_device(sensor)
    radio.send_poll("a", "t", responses.append)
    sched.run()
    assert len(responses) == 1 and sensor.polls == 1

    radio.connect("act", "a", ZWAVE, loss_rate=0.0)
    actuator = StubActuator("act")
    radio.register_device(actuator)
    radio.send_command("a", Command(actuator_id="act", seq=1, issued_at=0.0,
                                    action="on"))
    sched.run()
    assert [c.action for c in actuator.commands] == ["on"]


def test_single_outstanding_poll_drop_survives_fast_path():
    """Fig. 8: a busy sensor silently drops concurrent polls — the indexed
    poll path must still route every request through the device object."""
    sched, radio = make_radio()
    a = StubListener("a")
    radio.register_listener(a)
    radio.connect("t", "a", IP, loss_rate=0.0)
    sensor = StubPollSensor("t")
    radio.register_device(sensor)
    responses = []
    sensor.busy = True
    for _ in range(5):
        radio.send_poll("a", "t", responses.append)
    sched.run()
    assert responses == [] and sensor.polls == 0
    sensor.busy = False
    radio.send_poll("a", "t", responses.append)
    sched.run()
    assert len(responses) == 1 and sensor.polls == 1
