"""Unit tests for ASCII report rendering."""

from repro.eval.experiments import ExperimentTable
from repro.eval.report import SeriesPlot, render_table


def test_render_table_alignment_and_notes():
    text = render_table(
        "demo", ["name", "value"],
        [["a", 1.0], ["long-name", 123456.0]],
        notes=["a note"],
    )
    lines = text.splitlines()
    assert lines[0] == "== demo =="
    assert all(len(l) == len(lines[1]) for l in lines[1:-1])
    assert "note: a note" in text
    assert "123456" in text


def test_cell_formatting():
    text = render_table("t", ["x"], [[0.12345], [12.345], [1234.5], [0]])
    assert "0.1234" in text or "0.1235" in text
    assert "12.35" in text or "12.34" in text
    assert "1234" in text.replace("1234.5", "1234")


def test_experiment_table_queries():
    table = ExperimentTable(
        experiment="x", title="t", columns=["a", "b", "v"],
        rows=[[1, "p", 10.0], [1, "q", 20.0], [2, "p", 30.0]],
    )
    assert table.column("v") == [10.0, 20.0, 30.0]
    assert table.lookup(a=1) == [[1, "p", 10.0], [1, "q", 20.0]]
    assert table.cell("v", a=2, b="p") == 30.0


def test_experiment_table_cell_requires_unique_match():
    import pytest

    table = ExperimentTable(experiment="x", title="t", columns=["a", "v"],
                            rows=[[1, 10.0], [1, 20.0]])
    with pytest.raises(KeyError):
        table.cell("v", a=1)
    with pytest.raises(KeyError):
        table.cell("v", a=9)


def test_series_plot_renders_bars():
    plot = SeriesPlot(title="timeline", x_label="t")
    plot.series["gap"] = [(0.0, 0.0), (1.0, 5.0), (2.0, 10.0)]
    text = plot.render(width=10)
    assert "timeline" in text
    assert "##########" in text  # the peak bar
    assert "t=" in text


def test_series_plot_empty_series():
    plot = SeriesPlot(title="empty", x_label="t")
    plot.series["nothing"] = []
    assert "empty" in plot.render()


def test_require_digest_version_accepts_current_build():
    from repro.eval.report import require_digest_version
    from repro.sim.tracing import DIGEST_VERSION

    require_digest_version({"digest_version": DIGEST_VERSION})  # no raise


def test_require_digest_version_refuses_v1_and_legacy():
    import pytest

    from repro.eval.report import DigestVersionMismatch, require_digest_version

    with pytest.raises(DigestVersionMismatch, match="v1"):
        require_digest_version({"digest_version": 1}, source="old report")
    # Pre-versioning reports carry no field at all: treated as v1.
    with pytest.raises(DigestVersionMismatch, match="incomparable"):
        require_digest_version({"runs": []})
