"""Unit tests for technology adapters (Section 7)."""

import pytest

from repro.core.events import Event
from repro.devices.adapters import (
    ADAPTER_FACTORIES,
    AdapterSet,
    make_zwave_adapter,
)
from repro.net.radio import BLE, RadioNetwork, ZWAVE
from repro.sim.random import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace


class SlowSensor:
    """Serves one poll at a time after a fixed delay."""

    def __init__(self, name: str, scheduler: Scheduler, delay: float = 0.5):
        self.name = name
        self._scheduler = scheduler
        self._delay = delay
        self.polls = 0

    def receive_poll(self, respond):
        self.polls += 1
        event = Event(sensor_id=self.name, seq=self.polls, emitted_at=0.0,
                      value=1.0, size_bytes=4)
        self._scheduler.call_later(self._delay, respond, event)


class StubListener:
    def __init__(self, name):
        self.name = name
        self.alive = True

    def on_sensor_event(self, event):  # pragma: no cover - unused here
        pass


def make_rig(n_sensors=2):
    sched = Scheduler()
    radio = RadioNetwork(sched, RandomSource(2), Trace())
    radio.register_listener(StubListener("host"))
    sensors = []
    for i in range(n_sensors):
        sensor = SlowSensor(f"s{i}", sched)
        radio.register_device(sensor)
        radio.connect(f"s{i}", "host", ZWAVE, loss_rate=0.0)
        sensors.append(sensor)
    return sched, radio, sensors


def test_modified_openzwave_polls_concurrently():
    sched, radio, sensors = make_rig()
    adapter = make_zwave_adapter("host", radio, sched, modified_openzwave=True)
    got = []
    adapter.poll("s0", got.append)
    adapter.poll("s1", got.append)
    sched.run_until(0.1)
    # Both requests hit their sensors without host-side serialization.
    assert sensors[0].polls == 1 and sensors[1].polls == 1
    sched.run()
    assert len(got) == 2


def test_stock_openzwave_serializes_polls():
    sched, radio, sensors = make_rig()
    adapter = make_zwave_adapter("host", radio, sched, modified_openzwave=False)
    got = []
    adapter.poll("s0", got.append)
    adapter.poll("s1", got.append)
    sched.run_until(0.1)
    assert sensors[0].polls == 1 and sensors[1].polls == 0  # queued
    sched.run()
    assert sensors[1].polls == 1
    assert len(got) == 2


def test_serialized_adapter_frees_itself_on_lost_response():
    sched, radio, sensors = make_rig()
    radio.set_link_loss("s0", "host", 1.0)  # request always lost
    adapter = make_zwave_adapter("host", radio, sched, modified_openzwave=False)
    got = []
    adapter.poll("s0", got.append)
    adapter.poll("s1", got.append)
    sched.run()
    # The conservative 2 s window frees the stack; s1 still gets polled.
    assert sensors[1].polls == 1


def test_adapter_set_capability_queries():
    sched, radio, _ = make_rig(0)
    adapters = AdapterSet()
    adapters.install(make_zwave_adapter("host", radio, sched))
    assert adapters.supports(ZWAVE)
    assert not adapters.supports(BLE)
    assert adapters.technologies == {"zwave"}
    assert adapters.for_technology(ZWAVE).technology is ZWAVE
    with pytest.raises(KeyError):
        adapters.for_technology(BLE)


def test_factories_cover_paper_technologies():
    assert set(ADAPTER_FACTORIES) == {"zwave", "zigbee", "ble", "ip"}
