"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.scheduler import Scheduler, SimulationError


def test_time_starts_at_zero():
    assert Scheduler().now == 0.0


def test_call_later_runs_in_time_order():
    sched = Scheduler()
    order = []
    sched.call_later(2.0, order.append, "b")
    sched.call_later(1.0, order.append, "a")
    sched.call_later(3.0, order.append, "c")
    sched.run()
    assert order == ["a", "b", "c"]


def test_same_time_runs_in_scheduling_order():
    sched = Scheduler()
    order = []
    for tag in ("first", "second", "third"):
        sched.call_at(5.0, order.append, tag)
    sched.run()
    assert order == ["first", "second", "third"]


def test_now_advances_to_event_time():
    sched = Scheduler()
    seen = []
    sched.call_later(1.5, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [1.5]


def test_run_until_stops_at_deadline():
    sched = Scheduler()
    ran = []
    sched.call_later(1.0, ran.append, 1)
    sched.call_later(5.0, ran.append, 5)
    sched.run_until(2.0)
    assert ran == [1]
    assert sched.now == 2.0
    sched.run_until(10.0)
    assert ran == [1, 5]


def test_run_until_deadline_is_inclusive():
    sched = Scheduler()
    ran = []
    sched.call_at(2.0, ran.append, "x")
    sched.run_until(2.0)
    assert ran == ["x"]


def test_cancelled_timer_does_not_fire():
    sched = Scheduler()
    ran = []
    handle = sched.call_later(1.0, ran.append, "x")
    handle.cancel()
    sched.run()
    assert ran == []
    assert handle.cancelled
    assert not handle.fired


def test_cancel_after_fire_is_noop():
    sched = Scheduler()
    handle = sched.call_later(0.5, lambda: None)
    sched.run()
    assert handle.fired
    handle.cancel()  # must not raise


def test_scheduling_in_the_past_rejected():
    sched = Scheduler()
    sched.call_later(1.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.call_at(0.5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Scheduler().call_later(-0.1, lambda: None)


def test_run_until_past_deadline_rejected():
    sched = Scheduler()
    sched.run_until(5.0)
    with pytest.raises(SimulationError):
        sched.run_until(2.0)


def test_callbacks_can_schedule_more_work():
    sched = Scheduler()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sched.call_later(1.0, chain, n + 1)

    sched.call_later(1.0, chain, 1)
    sched.run()
    assert seen == [1, 2, 3]
    assert sched.now == 3.0


def test_event_budget_guards_infinite_loops():
    sched = Scheduler()

    def forever():
        sched.call_later(0.1, forever)

    sched.call_later(0.1, forever)
    with pytest.raises(SimulationError):
        sched.run(max_events=100)


def test_pending_and_processed_counters():
    sched = Scheduler()
    sched.call_later(1.0, lambda: None)
    handle = sched.call_later(2.0, lambda: None)
    handle.cancel()
    assert sched.pending_events == 1
    sched.run()
    assert sched.processed_events == 1


# -- call_repeating ------------------------------------------------------------


def test_call_repeating_fires_every_interval():
    sched = Scheduler()
    times = []
    sched.call_repeating(1.0, lambda: times.append(sched.now))
    sched.run_until(4.5)
    assert times == [1.0, 2.0, 3.0, 4.0]


def test_call_repeating_first_delay():
    sched = Scheduler()
    times = []
    sched.call_repeating(1.0, lambda: times.append(sched.now), first_delay=0.25)
    sched.run_until(3.0)
    assert times == [0.25, 1.25, 2.25]


def test_call_repeating_cancel_stops_ticks():
    sched = Scheduler()
    times = []
    handle = sched.call_repeating(1.0, lambda: times.append(sched.now))
    sched.run_until(2.5)
    handle.cancel()
    sched.run_until(10.0)
    assert times == [1.0, 2.0]
    assert sched.pending_events == 0


def test_call_repeating_cancel_from_inside_callback():
    sched = Scheduler()
    fired = []
    handle = sched.call_repeating(1.0, lambda: (fired.append(sched.now),
                                                handle.cancel()))
    sched.run_until(5.0)
    assert fired == [1.0]


def test_call_repeating_matches_rearming_call_later_exactly():
    """Converting a self-re-arming timer must not perturb fire times."""
    interval = 0.3  # deliberately not exactly representable
    a, b = Scheduler(), Scheduler()
    times_a, times_b = [], []

    def rearm():
        times_a.append(a.now)
        a.call_later(interval, rearm)

    a.call_later(interval, rearm)
    b.call_repeating(interval, lambda: times_b.append(b.now))
    a.run_until(10.0)
    b.run_until(10.0)
    assert times_a == times_b  # bit-for-bit, not approximately


def test_call_repeating_rejects_bad_interval():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.call_repeating(0.0, lambda: None)
    with pytest.raises(SimulationError):
        sched.call_repeating(-1.0, lambda: None)


# -- O(1) pending + lazy-cancel compaction -------------------------------------


def test_pending_events_tracks_cancellations():
    sched = Scheduler()
    handles = [sched.call_later(float(i + 1), lambda: None) for i in range(10)]
    assert sched.pending_events == 10
    for handle in handles[:4]:
        handle.cancel()
    assert sched.pending_events == 6
    handles[0].cancel()  # double-cancel is a no-op
    assert sched.pending_events == 6
    sched.run_until(20.0)
    assert sched.pending_events == 0
    assert sched.processed_events == 6


def test_mass_cancellation_compacts_heap():
    sched = Scheduler()
    keep = [sched.call_later(1000.0 + i, lambda: None) for i in range(5)]
    doomed = [sched.call_later(float(i + 1), lambda: None) for i in range(500)]
    for handle in doomed:
        handle.cancel()
    # Lazy cancellation must not leave 500 dead entries in the heap.
    assert len(sched._heap) < 100
    assert sched.pending_events == 5
    sched.run_until(2000.0)
    assert sched.processed_events == 5
    assert all(h.fired for h in keep)


def test_cancelled_entries_skipped_after_compaction():
    sched = Scheduler()
    fired = []
    sched.call_later(5.0, lambda: fired.append("kept"))
    doomed = [sched.call_later(1.0, lambda: fired.append("no")) for _ in range(200)]
    for handle in doomed:
        handle.cancel()
    sched.run_until(10.0)
    assert fired == ["kept"]
