"""Repeating-entry edge cases: cancellation timing, zero first delay, and
ordering against one-shot posts sharing the same bucket.

Both repeating lanes are covered — ``call_repeating`` (handle-based) and
``post_repeating`` (the bare-list express lane) — because the drain loop
re-arms them through different code paths that must agree on semantics.
"""

import pytest

from repro.sim.scheduler import Scheduler, SimulationError


def test_post_repeating_cancel_inside_own_callback_suppresses_rearm():
    sched = Scheduler()
    fired = []
    box = {}

    def tick():
        fired.append(sched.now)
        if len(fired) == 2:
            box["h"].cancel()

    box["h"] = sched.post_repeating(1.0, tick)
    sched.run_until(10.0)
    assert fired == [1.0, 2.0]
    assert sched.pending_events == 0


def test_call_repeating_cancel_inside_own_callback_suppresses_rearm():
    sched = Scheduler()
    fired = []
    box = {}

    def tick():
        fired.append(sched.now)
        if len(fired) == 2:
            box["h"].cancel()

    box["h"] = sched.call_repeating(1.0, tick)
    sched.run_until(10.0)
    assert fired == [1.0, 2.0]
    assert sched.pending_events == 0


def test_cancel_while_same_timestamp_bucket_mid_drain():
    """A one-shot post earlier in the bucket cancels the repeating entry
    scheduled for the same instant: the entry must not fire, and nothing
    may leak into the pending count."""
    sched = Scheduler()
    fired = []
    box = {}

    sched.post_at(1.0, lambda: box["h"].cancel())
    box["h"] = sched.post_repeating(1.0, fired.append, "tick", first_delay=1.0)
    sched.run_until(5.0)
    assert fired == []
    assert sched.pending_events == 0


def test_cancel_mid_drain_spares_earlier_firing_same_bucket():
    """Two repeating entries in one bucket: the first cancels the second
    from its own callback, after both were already due at this instant."""
    sched = Scheduler()
    fired = []
    box = {}

    def first():
        fired.append(("first", sched.now))
        box["second"].cancel()

    sched.post_repeating(1.0, first, first_delay=1.0)
    box["second"] = sched.post_repeating(
        1.0, lambda: fired.append(("second", sched.now)), first_delay=1.0
    )
    sched.run_until(2.0)
    # At t=1.0 the first entry fires and cancels the second before the
    # drain reaches it; only the first keeps repeating.
    assert fired == [("first", 1.0), ("first", 2.0)]


def test_first_delay_zero_fires_immediately_then_on_interval():
    sched = Scheduler()
    fired = []
    sched.post_repeating(1.0, lambda: fired.append(sched.now), first_delay=0.0)
    sched.run_until(2.5)
    assert fired == [0.0, 1.0, 2.0]


def test_call_repeating_first_delay_zero_matches_post_lane():
    sched = Scheduler()
    fired = []
    sched.call_repeating(1.0, lambda: fired.append(sched.now), first_delay=0.0)
    sched.run_until(2.5)
    assert fired == [0.0, 1.0, 2.0]


def test_repeating_interleaves_with_post_at_in_submission_order():
    sched = Scheduler()
    order = []

    sched.post_at(2.0, order.append, "post-a")
    sched.post_repeating(2.0, lambda: order.append(f"tick@{sched.now:g}"))
    sched.post_at(2.0, order.append, "post-b")
    sched.run_until(4.0)
    # Same timestamp: submission order within the bucket; the re-armed
    # tick then fires alone at 4.0.
    assert order == ["post-a", "tick@2", "post-b", "tick@4"]


def test_post_repeating_rejects_nonpositive_interval_and_negative_delay():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.post_repeating(0.0, lambda: None)
    with pytest.raises(SimulationError):
        sched.post_repeating(1.0, lambda: None, first_delay=-0.1)


def test_cancel_twice_is_a_noop_and_counts_stay_exact():
    sched = Scheduler()
    fired = []
    handle = sched.post_repeating(1.0, fired.append, "x")
    sched.post_at(3.5, fired.append, "y")
    handle.cancel()
    handle.cancel()
    assert handle.cancelled
    sched.run_until(10.0)
    assert fired == ["y"]
    assert sched.pending_events == 0
