"""Unit tests for the replicated key-value store (on FakeEnv loopback)."""

import pytest

from repro.membership.heartbeat import HeartbeatService
from repro.sim.scheduler import Scheduler
from repro.storage.kv import ReplicatedStore, StoreBackend, TOMBSTONE, VersionedValue
from tests.helpers import FakeEnv


def make_cluster(names=("a", "b", "c"), sync_interval=2.0):
    sched = Scheduler()
    envs = [FakeEnv(name, sched) for name in names]
    envs[0].link(*envs[1:])
    stores = {}
    for env in envs:
        heartbeat = HeartbeatService(env, interval=0.5, timeout=2.0)
        store = ReplicatedStore(env, heartbeat, StoreBackend(env.name),
                                sync_interval=sync_interval)
        heartbeat.start()
        store.start()
        stores[env.name] = store
    return sched, {e.name: e for e in envs}, stores


def test_put_get_local():
    sched, envs, stores = make_cluster(("a",))
    stores["a"].put("k", 42)
    assert stores["a"].get("k") == 42
    assert "k" in stores["a"]
    assert stores["a"].get("missing", "dflt") == "dflt"


def test_writes_gossip_to_peers():
    sched, envs, stores = make_cluster()
    stores["a"].put("mode", "away")
    sched.run_until(1.0)
    assert stores["b"].get("mode") == "away"
    assert stores["c"].get("mode") == "away"


def test_last_writer_wins_convergence():
    sched, envs, stores = make_cluster()
    stores["a"].put("k", "from-a")
    sched.run_until(1.0)
    stores["b"].put("k", "from-b")  # causally later (lamport advanced)
    sched.run_until(2.0)
    assert all(s.get("k") == "from-b" for s in stores.values())


def test_concurrent_writes_converge_deterministically():
    sched, envs, stores = make_cluster()
    # Same lamport stamp: the writer name breaks the tie, everywhere.
    stores["a"].put("k", "A")
    stores["b"].put("k", "B")
    sched.run_until(1.0)
    values = {s.get("k") for s in stores.values()}
    assert values == {"B"}  # ("b" > "a") at equal lamport


def test_delete_replicates_as_tombstone():
    sched, envs, stores = make_cluster()
    stores["a"].put("k", 1)
    sched.run_until(1.0)
    stores["b"].delete("k")
    sched.run_until(2.0)
    for store in stores.values():
        assert store.get("k") is None
        assert "k" not in store
    assert stores["a"].keys() == []


def test_tombstone_value_reserved():
    sched, envs, stores = make_cluster(("a",))
    with pytest.raises(ValueError):
        stores["a"].put("k", TOMBSTONE)


def test_anti_entropy_heals_missed_gossip():
    sched, envs, stores = make_cluster(sync_interval=2.0)
    envs["a"].drop_between("a", "c")  # gossip from a never reaches c
    stores["a"].put("k", "v")
    sched.run_until(1.0)
    assert stores["c"].get("k") is None
    # ... but b's periodic anti-entropy with its ring successor c heals it.
    sched.run_until(6.0)
    assert stores["c"].get("k") == "v"


def test_sync_pulls_newer_versions_back():
    """Anti-entropy is bidirectional: the queried peer also learns what the
    querier is missing via the reply loop."""
    sched, envs, stores = make_cluster(("a", "b"), sync_interval=2.0)
    envs["a"].drop_between("a", "b")
    stores["a"].put("only-on-a", 1)
    stores["b"].put("only-on-b", 2)
    # Heal the link, then let anti-entropy run both ways.
    for env in envs.values():
        env.dropped_links.clear()
    sched.run_until(10.0)
    for store in stores.values():
        assert store.get("only-on-a") == 1
        assert store.get("only-on-b") == 2


def test_listener_fires_on_remote_updates():
    sched, envs, stores = make_cluster(("a", "b"))
    seen = []
    stores["b"].add_listener(lambda k, v: seen.append((k, v)))
    stores["a"].put("k", 5)
    sched.run_until(1.0)
    assert ("k", 5) in seen


def test_versioned_value_ordering():
    older = VersionedValue(lamport=1, writer="z", value=1)
    newer = VersionedValue(lamport=2, writer="a", value=2)
    assert newer > older
    tie_a = VersionedValue(lamport=3, writer="a", value=1)
    tie_b = VersionedValue(lamport=3, writer="b", value=2)
    assert tie_b > tie_a


def test_items_snapshot():
    sched, envs, stores = make_cluster(("a",))
    stores["a"].put("x", 1)
    stores["a"].put("y", 2)
    stores["a"].delete("x")
    assert stores["a"].items() == {"y": 2}
