"""Unit tests for the per-process delivery orchestrator."""

import pytest

from repro.core.broadcast import NaiveBroadcastDelivery
from repro.core.delivery import GAP, GAPLESS, Delivery
from repro.core.delivery_service import (
    CMD_FWD,
    DeliveryContext,
    DeliveryService,
    DeviceInfo,
)
from repro.core.eventlog import EventStore
from repro.core.events import Command, Event
from repro.core.gap import GapDelivery
from repro.core.gapless import GaplessDelivery
from repro.core.graph import App
from repro.core.operators import Operator
from repro.core.plan import DeploymentPlan
from repro.core.windows import CountWindow
from repro.membership.heartbeat import HeartbeatService
from repro.net.latency import ProcessingModel
from repro.net.message import Message
from tests.helpers import FakeEnv


def make_service(
    name="p1", peers=("p2", "p3"), *, guarantee: Delivery = GAPLESS,
    override=None, actuator_hosts=None,
):
    op = Operator("L", on_window=lambda ctx, c: None)
    op.add_sensor("s", guarantee, CountWindow(1))
    op.add_actuator("a", guarantee)
    app = App("app", op)

    env = FakeEnv(name)
    for peer in peers:
        env.link(FakeEnv(peer, env.scheduler))
    heartbeat = HeartbeatService(env, interval=0.5, timeout=2.0)
    delivered = []
    actuated = []
    ctx = DeliveryContext(
        env=env,
        heartbeat=heartbeat,
        plan=DeploymentPlan(
            processes=[name, *peers],
            sensor_hosts={"s": [name, *peers]},
            actuator_hosts={"a": actuator_hosts or [name]},
            apps=[app],
        ),
        store=EventStore(name),
        processing=ProcessingModel(local_dispatch=0.0, gapless_ingest_log=0.0,
                                   gapless_hop_processing=0.0),
        deliver_local=lambda sensor, event, only: delivered.append((sensor, event, only)),
        on_epoch_gap=lambda *a: None,
        actuate_local=actuated.append,
        poll_sensor=lambda *a: None,
        device_info={
            "s": DeviceInfo(name="s", category="sensor"),
            "a": DeviceInfo(name="a", category="actuator"),
        },
    )
    heartbeat.start()
    service = DeliveryService(ctx, delivery_override=override)
    service.start()
    return env, service, delivered, actuated


def ev(seq: int, sensor="s") -> Event:
    return Event(sensor_id=sensor, seq=seq, emitted_at=0.0, value=seq,
                 size_bytes=4)


def cmd(actuator="a", seq=1) -> Command:
    return Command(actuator_id=actuator, seq=seq, issued_at=0.0, action="x",
                   issued_by="app@p1")


def test_instance_type_follows_guarantee():
    _env, gapless_svc, *_ = make_service(guarantee=GAPLESS)
    assert isinstance(gapless_svc.instances["s"], GaplessDelivery)
    _env, gap_svc, *_ = make_service(guarantee=GAP)
    assert isinstance(gap_svc.instances["s"], GapDelivery)


def test_delivery_override_selects_baseline():
    _env, svc, *_ = make_service(override={"s": "naive-broadcast"})
    assert isinstance(svc.instances["s"], NaiveBroadcastDelivery)


def test_unknown_override_rejected():
    with pytest.raises(ValueError):
        make_service(override={"s": "quantum"})


def test_unrouted_ingest_is_traced_not_crashed():
    env, svc, delivered, _ = make_service()
    svc.on_ingest(ev(1, sensor="ghost"))
    assert env.trace_log.count("ingest_unrouted") == 1
    assert delivered == []


def test_messages_route_by_sensor_payload():
    env, svc, delivered, _ = make_service()
    message = Message(kind="gapless_fwd", src="p2", dst="p1", payload={
        "sensor": "ghost", "event": ev(1, "ghost"),
    })
    env.deliver(message)  # unknown sensor: dropped quietly
    assert delivered == []


def test_local_actuation_when_node_is_active_host():
    env, svc, _, actuated = make_service(actuator_hosts=["p1"])
    svc.send_command(cmd(), "app", GAP)
    assert len(actuated) == 1


def test_command_forwarded_to_live_remote_host():
    env, svc, _, actuated = make_service(actuator_hosts=["p3"])
    svc.send_command(cmd(), "app", GAP)
    assert actuated == []
    forwarded = env.sent_of_kind(CMD_FWD)
    assert len(forwarded) == 1 and forwarded[0].dst == "p3"


def test_command_unroutable_when_all_hosts_suspected():
    env, svc, _, actuated = make_service(actuator_hosts=["p3"])
    # p3 never heartbeats: after the timeout p1 suspects it.
    env.scheduler.run_until(4.0)
    svc.send_command(cmd(), "app", GAP)
    assert env.sent_of_kind(CMD_FWD) == []
    assert env.trace_log.count("command_unroutable") == 1


def test_gapless_command_rerouted_on_suspicion():
    env, svc, _, actuated = make_service(actuator_hosts=["p2", "p3"])
    # p3 participates in heartbeats (stays alive); p2 is silent and will be
    # suspected before the command's re-check fires.
    peer_env = env._network["p3"]
    peer_hb = HeartbeatService(peer_env, interval=0.5, timeout=2.0)
    peer_hb.start()
    svc.send_command(cmd(), "app", GAPLESS)
    first = env.sent_of_kind(CMD_FWD)
    assert [m.dst for m in first] == ["p2"]
    env.scheduler.run_until(6.0)
    targets = [m.dst for m in env.sent_of_kind(CMD_FWD)]
    assert "p3" in targets
    assert env.trace_log.count("command_rerouted") == 1


def test_cmd_fwd_for_foreign_actuator_is_rejected():
    env, svc, _, actuated = make_service(actuator_hosts=["p3"])
    message = Message(kind=CMD_FWD, src="p2", dst="p1", payload={
        "actuator": "a", "command": cmd(), "app": "app",
    })
    env.deliver(message)
    assert actuated == []
    assert env.trace_log.count("command_misrouted") == 1
