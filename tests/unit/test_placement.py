"""Unit tests for placement and election (Sections 5 and 7)."""

import pytest

from repro.core.delivery import GAP
from repro.core.election import AppElection
from repro.core.graph import App
from repro.core.operators import Operator
from repro.core.placement import active_process, placement_chain, placement_score
from repro.core.plan import DeploymentPlan
from repro.core.windows import CountWindow
from repro.membership.views import LocalView


def make_app() -> App:
    op = Operator("L")
    op.add_sensor("s1", GAP, CountWindow(1))
    op.add_sensor("s2", GAP, CountWindow(1))
    op.add_actuator("a1", GAP)
    return App("app", op)


def make_plan() -> DeploymentPlan:
    return DeploymentPlan(
        processes=["hub", "tv", "fridge"],
        sensor_hosts={"s1": ["tv", "fridge"], "s2": ["tv"]},
        actuator_hosts={"a1": ["hub"]},
        apps=[make_app()],
    )


def test_placement_score_counts_active_nodes():
    plan = make_plan()
    app = plan.apps[0]
    assert placement_score(app, plan, "tv") == 2
    assert placement_score(app, plan, "fridge") == 1
    assert placement_score(app, plan, "hub") == 1


def test_chain_orders_by_score_then_name():
    plan = make_plan()
    chain = placement_chain(plan.apps[0], plan)
    # Ascending preference: fridge(1) < hub(1) < tv(2); tie broken by name.
    assert chain == ["fridge", "hub", "tv"]


def test_active_process_is_last_alive():
    chain = ["fridge", "hub", "tv"]
    assert active_process(chain, {"fridge", "hub", "tv"}) == "tv"
    assert active_process(chain, {"fridge", "hub"}) == "hub"
    assert active_process(chain, {"fridge"}) == "fridge"
    assert active_process(chain, set()) is None


def test_election_decisions():
    election = AppElection("hub", ["fridge", "hub", "tv"])
    everyone = LocalView.of("hub", ["fridge", "tv"])
    decision = election.decide(everyone)
    assert decision.active == "tv"
    assert not decision.i_am_active

    tv_down = LocalView.of("hub", ["fridge"])
    decision = election.decide(tv_down)
    assert decision.active == "hub"
    assert decision.i_am_active


def test_bully_promotion_rule():
    election = AppElection("hub", ["fridge", "hub", "tv"])
    assert election.successors_of_me() == ["tv"]
    assert election.should_promote(LocalView.of("hub", ["fridge"]))
    assert not election.should_promote(LocalView.of("hub", ["fridge", "tv"]))


def test_election_requires_membership_in_chain():
    with pytest.raises(ValueError):
        AppElection("ghost", ["a", "b"])


def test_plan_validation():
    plan = make_plan()
    plan.validate()  # all devices reachable

    orphan = DeploymentPlan(
        processes=["hub"], sensor_hosts={}, actuator_hosts={"a1": ["hub"]},
        apps=[make_app()],
    )
    with pytest.raises(ValueError):
        orphan.validate()


def test_plan_accessors():
    plan = make_plan()
    assert plan.has_active_sensor_node("s1", "tv")
    assert not plan.has_active_sensor_node("s1", "hub")
    assert plan.active_actuator_hosts("a1") == ["hub"]
    assert plan.apps_consuming("s1")[0].name == "app"
    assert plan.apps_consuming("unknown") == []
    assert plan.app_named("app").name == "app"
    with pytest.raises(KeyError):
        plan.app_named("nope")
