"""post_at — the fire-and-forget scheduling lane — must order exactly like
call_at while mixing freely with handle-based entries in the same heap."""

import pytest

from repro.sim.scheduler import Scheduler, SimulationError


def test_post_at_orders_with_call_at_by_time_then_submission():
    sched = Scheduler()
    order = []
    sched.call_at(2.0, order.append, "call@2")
    sched.post_at(1.0, order.append, "post@1")
    sched.post_at(2.0, order.append, "post@2a")
    sched.call_at(2.0, order.append, "call@2b")
    sched.post_at(2.0, order.append, "post@2c")
    sched.run()
    assert order == ["post@1", "call@2", "post@2a", "call@2b", "post@2c"]


def test_post_at_rejects_the_past():
    sched = Scheduler()
    sched.call_at(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.post_at(4.0, lambda: None)


def test_post_at_counts_as_pending_and_processed():
    sched = Scheduler()
    fired = []
    sched.post_at(1.0, fired.append, 1)
    sched.post_at(2.0, fired.append, 2)
    assert sched.pending_events == 2
    sched.run_until(10.0)
    assert fired == [1, 2]
    assert sched.pending_events == 0
    assert sched.processed_events == 2


def test_posted_entries_survive_compaction():
    sched = Scheduler()
    fired = []
    handles = [sched.call_at(5.0, fired.append, i) for i in range(200)]
    sched.post_at(6.0, fired.append, "posted")
    for handle in handles:
        handle.cancel()  # triggers lazy-cancel compaction
    sched.run_until(10.0)
    assert fired == ["posted"]


def test_step_executes_posted_entries():
    sched = Scheduler()
    fired = []
    sched.post_at(1.0, fired.append, "a")
    sched.call_at(2.0, fired.append, "b")
    assert sched.step() and fired == ["a"]
    assert sched.now == 1.0
    assert sched.step() and fired == ["a", "b"]
    assert not sched.step()


def test_posted_callback_can_post_more_work():
    sched = Scheduler()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sched.post_at(sched.now + 1.0, chain, n + 1)

    sched.post_at(0.0, chain, 0)
    sched.run_until(10.0)
    assert fired == [0, 1, 2, 3]


# -- same-timestamp semantics pinned before the batched-dispatch change ---------


def test_rearmed_repeating_runs_after_preexisting_posts_at_same_time():
    """A repeating timer's re-arm happens while its tick runs, so at the
    *next* shared timestamp it must run after anything already queued there."""
    sched = Scheduler()
    order = []
    sched.call_repeating(1.0, lambda: order.append(f"tick@{sched.now:g}"))
    sched.post_at(1.0, order.append, "post@1")
    sched.post_at(2.0, order.append, "post@2")
    sched.run_until(2.5)
    assert order == ["tick@1", "post@1", "post@2", "tick@2"]


def test_post_at_now_during_drain_joins_the_current_batch():
    sched = Scheduler()
    order = []

    def first():
        order.append("first")
        sched.post_at(sched.now, order.append, "same-instant")

    sched.post_at(5.0, first)
    sched.call_at(5.0, order.append, "second")
    sched.run_until(5.0)
    assert order == ["first", "second", "same-instant"]


def test_cancel_of_a_later_entry_in_the_same_batch():
    sched = Scheduler()
    order = []
    handles = {}
    handles["victim"] = None

    def canceller():
        order.append("canceller")
        handles["victim"].cancel()

    sched.call_at(3.0, canceller)
    handles["victim"] = sched.call_at(3.0, order.append, "victim")
    sched.post_at(3.0, order.append, "post")
    sched.run_until(4.0)
    assert order == ["canceller", "post"]


def test_heavy_cancellation_keeps_equal_timestamp_order_for_survivors():
    sched = Scheduler()
    order = []
    doomed = []
    for i in range(300):
        if i % 3 == 0:
            sched.post_at(7.0, order.append, i)
        else:
            handle = sched.call_at(7.0, order.append, i)
            if i % 3 == 1:
                doomed.append(handle)
    for handle in doomed:
        handle.cancel()  # exceeds the compaction threshold
    assert sched.pending_events == 200
    sched.run_until(7.0)
    assert order == [i for i in range(300) if i % 3 != 1]
    assert sched.pending_events == 0


def test_pending_events_counts_posts_and_handles_through_compaction():
    sched = Scheduler()
    for i in range(10):
        sched.post_at(50.0, lambda: None)
    handles = [sched.call_at(float(i + 1), lambda: None) for i in range(200)]
    assert sched.pending_events == 210
    for handle in handles:
        handle.cancel()
    assert sched.pending_events == 10
    sched.run_until(100.0)
    assert sched.processed_events == 10
