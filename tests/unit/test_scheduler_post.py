"""post_at — the fire-and-forget scheduling lane — must order exactly like
call_at while mixing freely with handle-based entries in the same heap."""

import pytest

from repro.sim.scheduler import Scheduler, SimulationError


def test_post_at_orders_with_call_at_by_time_then_submission():
    sched = Scheduler()
    order = []
    sched.call_at(2.0, order.append, "call@2")
    sched.post_at(1.0, order.append, "post@1")
    sched.post_at(2.0, order.append, "post@2a")
    sched.call_at(2.0, order.append, "call@2b")
    sched.post_at(2.0, order.append, "post@2c")
    sched.run()
    assert order == ["post@1", "call@2", "post@2a", "call@2b", "post@2c"]


def test_post_at_rejects_the_past():
    sched = Scheduler()
    sched.call_at(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.post_at(4.0, lambda: None)


def test_post_at_counts_as_pending_and_processed():
    sched = Scheduler()
    fired = []
    sched.post_at(1.0, fired.append, 1)
    sched.post_at(2.0, fired.append, 2)
    assert sched.pending_events == 2
    sched.run_until(10.0)
    assert fired == [1, 2]
    assert sched.pending_events == 0
    assert sched.processed_events == 2


def test_posted_entries_survive_compaction():
    sched = Scheduler()
    fired = []
    handles = [sched.call_at(5.0, fired.append, i) for i in range(200)]
    sched.post_at(6.0, fired.append, "posted")
    for handle in handles:
        handle.cancel()  # triggers lazy-cancel compaction
    sched.run_until(10.0)
    assert fired == ["posted"]


def test_step_executes_posted_entries():
    sched = Scheduler()
    fired = []
    sched.post_at(1.0, fired.append, "a")
    sched.call_at(2.0, fired.append, "b")
    assert sched.step() and fired == ["a"]
    assert sched.now == 1.0
    assert sched.step() and fired == ["a", "b"]
    assert not sched.step()


def test_posted_callback_can_post_more_work():
    sched = Scheduler()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sched.post_at(sched.now + 1.0, chain, n + 1)

    sched.post_at(0.0, chain, 0)
    sched.run_until(10.0)
    assert fired == [0, 1, 2, 3]
