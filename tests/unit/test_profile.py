"""The profiling subsystem: subsystem attribution and report structure."""

import json

import pytest

import repro.eval.profile as profile_mod
from repro.eval.profile import (
    WORKLOADS, profile_workload, render_profile_summary, run_profile,
    subsystem_of,
)


def test_subsystem_attribution():
    assert subsystem_of("/x/src/repro/net/transport.py") == "net"
    assert subsystem_of("/x/src/repro/sim/scheduler.py") == "sim"
    assert subsystem_of("/x/src/repro/core/runtime.py") == "core"
    assert subsystem_of("/x/src/repro/eval/perf.py") == "eval"
    assert subsystem_of("/x/src/repro/membership/heartbeat.py") == "membership"
    assert subsystem_of("/x/src/repro/__init__.py") == "core"
    assert subsystem_of("/usr/lib/python3.11/heapq.py") == "other"
    assert subsystem_of("~") == "other"


@pytest.fixture
def tiny_workload():
    """Register a fast synthetic workload so tests don't pay for real ones."""
    def run() -> None:
        from repro.net.message import Message
        from repro.net.transport import HomeNetwork
        from repro.sim.random import RandomSource
        from repro.sim.scheduler import Scheduler
        from repro.sim.tracing import Trace

        sched = Scheduler()
        net = HomeNetwork(sched, RandomSource(1), Trace(keep_kinds=set()))

        class Sink:
            name = "b"
            alive = True

            def deliver(self, message):
                pass

        net.register(Sink())
        for seq in range(500):
            net.send(Message("m", "a", "b", {"seq": seq}))
        sched.run()

    WORKLOADS["tiny"] = run
    yield "tiny"
    del WORKLOADS["tiny"]


def test_profile_workload_structure(tiny_workload):
    result = profile_workload(tiny_workload, top_n=5)
    assert result["workload"] == tiny_workload
    assert result["total_calls"] > 500
    assert len(result["hotspots"]) == 5
    top = result["hotspots"][0]
    assert set(top) == {
        "function", "file", "line", "subsystem", "ncalls",
        "tottime_s", "cumtime_s",
    }
    # Cumulative ordering, descending.
    cums = [row["cumtime_s"] for row in result["hotspots"]]
    assert cums == sorted(cums, reverse=True)
    # The transport send path must show up attributed to `net`.
    assert any(
        row["subsystem"] == "net" and row["function"] == "send"
        for row in result["hotspots"]
    )
    assert "net" in result["subsystem_tottime_s"]
    assert "sim" in result["subsystem_tottime_s"]


def test_profile_workload_rejects_unknown_name():
    with pytest.raises(KeyError):
        profile_workload("nope")


def test_run_profile_writes_report(tiny_workload, tmp_path):
    out = tmp_path / "PROFILE_report.json"
    # top_n generous enough that the (now cheap) transport send path still
    # lands a [net]-tagged hotspot row in the rendered summary.
    report = run_profile((tiny_workload,), top_n=10, out_path=out)
    on_disk = json.loads(out.read_text())
    assert on_disk["top_n"] == 10
    assert set(on_disk["workloads"]) == {tiny_workload}
    assert on_disk["workloads"][tiny_workload]["hotspots"] == report[
        "workloads"
    ][tiny_workload]["hotspots"]
    summary = render_profile_summary(report)
    assert tiny_workload in summary and "[net]" in summary


def test_cli_profile_end_to_end(tiny_workload, tmp_path, monkeypatch):
    from repro.eval.cli import main

    monkeypatch.chdir(tmp_path)
    code = main(["profile", "--workloads", tiny_workload, "--top", "4"])
    assert code == 0
    report = json.loads((tmp_path / "PROFILE_report.json").read_text())
    assert len(report["workloads"][tiny_workload]["hotspots"]) == 4


def test_cli_profile_rejects_bad_args(tiny_workload):
    from repro.eval.cli import main

    assert main(["profile", "--workloads", "bogus"]) == 2
    assert main(["profile", "--top", "0"]) == 2


def test_real_workloads_are_registered():
    assert {"fig1", "network", "chaos"} <= set(WORKLOADS)
    assert profile_mod.TOP_N_DEFAULT >= 10
