"""Unit tests for the sensor watch and resource-aware placement."""

import pytest

from repro.core.delivery import GAP
from repro.core.graph import App
from repro.core.home import Home, HomeConfig
from repro.core.operators import Operator
from repro.core.placement import active_replica_set, placement_chain
from repro.core.plan import DeploymentPlan
from repro.core.sensorwatch import _SensorModel
from repro.core.windows import CountWindow


def test_active_replica_set_orders_by_priority():
    chain = ["c", "b", "a"]  # 'a' is the most preferred (last)
    assert active_replica_set(chain, {"a", "b", "c"}, 1) == ["a"]
    assert active_replica_set(chain, {"a", "b", "c"}, 2) == ["a", "b"]
    assert active_replica_set(chain, {"b", "c"}, 2) == ["b", "c"]
    assert active_replica_set(chain, set(), 2) == []
    assert active_replica_set(chain, {"a"}, 3) == ["a"]
    with pytest.raises(ValueError):
        active_replica_set(chain, {"a"}, 0)


def _plan_with_compute(compute: dict[str, float]) -> DeploymentPlan:
    op = Operator("L")
    op.add_sensor("s", GAP, CountWindow(1))
    app = App("a", op)
    return DeploymentPlan(
        processes=list(compute),
        sensor_hosts={"s": list(compute)},
        actuator_hosts={},
        apps=[app],
        host_compute=compute,
    )


def test_compute_breaks_placement_ties():
    plan = _plan_with_compute({"hub": 1.0, "tv": 4.0, "fridge": 2.0})
    chain = placement_chain(plan.apps[0], plan)
    # All equally connected: the beefiest appliance wins.
    assert chain[-1] == "tv"
    assert chain == ["hub", "fridge", "tv"]


def test_connectivity_still_dominates_compute():
    op = Operator("L")
    op.add_sensor("s", GAP, CountWindow(1))
    app = App("a", op)
    plan = DeploymentPlan(
        processes=["weak", "strong"],
        sensor_hosts={"s": ["weak"]},  # only 'weak' hears the sensor
        actuator_hosts={},
        apps=[app],
        host_compute={"weak": 0.5, "strong": 10.0},
    )
    assert placement_chain(app, plan)[-1] == "weak"


def test_home_rejects_non_positive_compute():
    home = Home()
    with pytest.raises(ValueError):
        home.add_process("p", compute=0.0)


def test_sensor_model_ewma():
    model = _SensorModel(last_seen=0.0)
    model.observe(1.0, alpha=0.5)
    assert model.ewma_gap == 1.0
    model.observe(3.0, alpha=0.5)
    assert model.ewma_gap == pytest.approx(1.5)
    assert model.samples == 2


def test_sensor_watch_requires_enough_samples():
    """A sensor that fired once (no interval estimate) is never suspected."""
    home = Home(HomeConfig(seed=1, sensor_watch=True))
    home.add_process("p0", adapters=("ip",))
    home.add_sensor("s1", kind="motion", technology="ip")
    home.add_actuator("a1", technology="ip")
    op = Operator("L", on_window=lambda ctx, c: None)
    op.add_sensor("s1", GAP, CountWindow(1))
    op.add_actuator("a1", GAP)
    home.deploy(App("w", op))
    home.start()
    home.sensor("s1").emit(True)
    home.run_until(120.0)
    assert home.trace.count("sensor_suspected") == 0
