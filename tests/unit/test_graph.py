"""Unit tests for operators wiring and application graphs."""

import pytest

from repro.core.delivery import GAP, GAPLESS, PollingPolicy
from repro.core.graph import App, GraphError, validate_apps
from repro.core.operators import Operator
from repro.core.windows import CountWindow, TimeWindow


def test_operator_wiring_api():
    op = Operator("logic")
    op.add_sensor("s1", GAP, CountWindow(1))
    op.add_actuator("a1", GAPLESS)
    assert op.input_streams == frozenset({"s1"})
    assert op.sensor_bindings[0].delivery is GAP
    assert op.actuator_bindings[0].delivery is GAPLESS


def test_duplicate_sensor_binding_rejected():
    op = Operator("logic")
    op.add_sensor("s1", GAP, CountWindow(1))
    with pytest.raises(ValueError):
        op.add_sensor("s1", GAPLESS, CountWindow(1))


def test_duplicate_actuator_binding_rejected():
    op = Operator("logic")
    op.add_actuator("a1", GAP)
    with pytest.raises(ValueError):
        op.add_actuator("a1", GAP)


def test_operator_cannot_be_its_own_upstream():
    op = Operator("logic")
    with pytest.raises(ValueError):
        op.add_upstream_operator(op, CountWindow(1))


def test_empty_names_rejected():
    with pytest.raises(ValueError):
        Operator("")
    op = Operator("x")
    op.add_sensor("s", GAP, CountWindow(1))
    with pytest.raises(ValueError):
        App("", op)


def test_app_closes_over_upstreams():
    upstream = Operator("src")
    upstream.add_sensor("s1", GAP, CountWindow(1))
    downstream = Operator("sink")
    downstream.add_upstream_operator(upstream, CountWindow(1))
    app = App("a", downstream)
    assert {op.name for op in app.operators} == {"src", "sink"}
    order = [op.name for op in app.topological_operators]
    assert order.index("src") < order.index("sink")


def test_cycle_detection():
    a = Operator("a")
    a.add_sensor("s1", GAP, CountWindow(1))
    b = Operator("b")
    a.add_upstream_operator(b, CountWindow(1))
    b.add_upstream_operator(a, CountWindow(1))
    with pytest.raises(GraphError):
        App("cyclic", [a, b])


def test_duplicate_operator_names_rejected():
    a1 = Operator("same")
    a1.add_sensor("s1", GAP, CountWindow(1))
    a2 = Operator("same")
    a2.add_sensor("s2", GAP, CountWindow(1))
    with pytest.raises(GraphError):
        App("app", [a1, a2])


def test_app_requires_operators_and_sensors():
    with pytest.raises(GraphError):
        App("empty", [])
    lonely = Operator("no-inputs")
    with pytest.raises(GraphError):
        App("app", lonely).sensor_requirements()


def test_strongest_guarantee_wins_across_operators():
    a = Operator("a")
    a.add_sensor("s1", GAP, CountWindow(1))
    b = Operator("b")
    b.add_sensor("s1", GAPLESS, CountWindow(1))
    app = App("app", [a, b])
    assert app.sensor_requirements()["s1"].delivery is GAPLESS


def test_conflicting_polling_epochs_rejected():
    a = Operator("a")
    a.add_sensor("s1", GAP, CountWindow(1), polling=PollingPolicy(epoch_s=1.0))
    b = Operator("b")
    b.add_sensor("s1", GAP, CountWindow(1), polling=PollingPolicy(epoch_s=2.0))
    with pytest.raises(GraphError):
        App("app", [a, b]).sensor_requirements()


def test_polling_policy_merge_keeps_the_defined_one():
    a = Operator("a")
    a.add_sensor("s1", GAP, CountWindow(1))
    b = Operator("b")
    b.add_sensor("s1", GAP, CountWindow(1), polling=PollingPolicy(epoch_s=2.0))
    app = App("app", [a, b])
    assert app.sensor_requirements()["s1"].polling.epoch_s == 2.0


def test_actuator_delivery_aggregation():
    a = Operator("a")
    a.add_sensor("s1", GAP, CountWindow(1))
    a.add_actuator("light", GAP)
    b = Operator("b")
    b.add_sensor("s2", GAP, CountWindow(1))
    b.add_actuator("light", GAPLESS)
    app = App("app", [a, b])
    assert app.actuator_delivery("light") is GAPLESS
    with pytest.raises(KeyError):
        app.actuator_delivery("nope")


def test_consumers_of_streams():
    src = Operator("src")
    src.add_sensor("s1", GAP, TimeWindow(1.0))
    sink = Operator("sink")
    sink.add_upstream_operator(src, CountWindow(1))
    app = App("app", [src, sink])
    assert [op.name for op in app.consumers_of("s1")] == ["src"]
    assert [op.name for op in app.consumers_of("op:src")] == ["sink"]


def test_validate_apps_rejects_duplicates():
    op1 = Operator("o1")
    op1.add_sensor("s", GAP, CountWindow(1))
    op2 = Operator("o2")
    op2.add_sensor("s", GAP, CountWindow(1))
    with pytest.raises(GraphError):
        validate_apps([App("same", op1), App("same", op2)])


def test_polling_policy_validation():
    with pytest.raises(ValueError):
        PollingPolicy(epoch_s=0.0)
    with pytest.raises(ValueError):
        PollingPolicy(epoch_s=1.0, retries=-1)
