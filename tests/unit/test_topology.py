"""Unit tests for the floor-plan topology model."""

from repro.net.radio import BLE, ZIGBEE, ZWAVE
from repro.net.topology import HomeTopology, Position, segments_intersect


def test_distance():
    assert Position(0, 0).distance_to(Position(3, 4)) == 5.0


def test_segment_intersection_basic():
    assert segments_intersect(Position(0, 0), Position(2, 2),
                              Position(0, 2), Position(2, 0))
    assert not segments_intersect(Position(0, 0), Position(1, 0),
                                  Position(0, 1), Position(1, 1))


def test_segment_intersection_collinear_overlap():
    assert segments_intersect(Position(0, 0), Position(4, 0),
                              Position(2, 0), Position(6, 0))


def test_unplaced_devices_are_reachable_at_base_loss():
    topo = HomeTopology()
    reachable, loss = topo.link_quality("sensor", "host", ZWAVE)
    assert reachable
    assert loss == ZWAVE.base_loss_rate


def test_out_of_range_unreachable():
    topo = HomeTopology()
    topo.place("sensor", 0, 0).place("host", 100, 0)
    reachable, loss = topo.link_quality("sensor", "host", ZIGBEE)  # 15 m range
    assert not reachable
    assert loss == 1.0
    # BLE reaches 100 m.
    reachable, _ = topo.link_quality("sensor", "host", BLE)
    assert reachable


def test_loss_grows_with_distance():
    topo = HomeTopology()
    topo.place("sensor", 0, 0).place("near", 5, 0).place("far", 35, 0)
    _, near_loss = topo.link_quality("sensor", "near", ZWAVE)
    _, far_loss = topo.link_quality("sensor", "far", ZWAVE)
    assert far_loss > near_loss


def test_walls_multiply_loss():
    topo = HomeTopology()
    topo.place("sensor", 0, 0).place("host", 10, 0)
    _, clear_loss = topo.link_quality("sensor", "host", ZWAVE)
    topo.add_wall(5, -5, 5, 5, loss_factor=20.0)
    _, wall_loss = topo.link_quality("sensor", "host", ZWAVE)
    assert wall_loss / clear_loss > 19.0
    assert topo.walls_between("sensor", "host")


def test_wall_not_crossing_has_no_effect():
    topo = HomeTopology()
    topo.place("sensor", 0, 0).place("host", 10, 0)
    topo.add_wall(5, 1, 5, 5, loss_factor=20.0)
    _, loss = topo.link_quality("sensor", "host", ZWAVE)
    assert loss < ZWAVE.base_loss_rate * 5


def test_loss_capped_at_one():
    topo = HomeTopology()
    topo.place("sensor", 0, 0).place("host", 39, 0)
    for i in range(10):
        topo.add_wall(1 + i, -5, 1 + i, 5, loss_factor=50.0)
    _, loss = topo.link_quality("sensor", "host", ZWAVE)
    assert loss == 1.0
