"""Unit tests for IntervalSet."""

import pytest

from repro.core.intervals import IntervalSet


def test_empty_set():
    s = IntervalSet()
    assert len(s) == 0
    assert 1 not in s
    assert s.max_value is None
    assert s.min_value is None


def test_single_values():
    s = IntervalSet()
    s.add(5)
    assert 5 in s
    assert 4 not in s
    assert len(s) == 1
    assert s.ranges() == [(5, 5)]


def test_adjacent_values_merge():
    s = IntervalSet()
    s.add(1)
    s.add(2)
    s.add(3)
    assert s.ranges() == [(1, 3)]


def test_gap_keeps_ranges_separate():
    s = IntervalSet()
    s.add(1)
    s.add(3)
    assert s.ranges() == [(1, 1), (3, 3)]
    s.add(2)
    assert s.ranges() == [(1, 3)]


def test_add_range_merging_multiple():
    s = IntervalSet([(1, 3), (7, 9), (20, 25)])
    s.add_range(2, 8)
    assert s.ranges() == [(1, 9), (20, 25)]


def test_add_range_before_all():
    s = IntervalSet([(10, 12)])
    s.add_range(1, 3)
    assert s.ranges() == [(1, 3), (10, 12)]


def test_add_range_after_all():
    s = IntervalSet([(1, 3)])
    s.add_range(10, 12)
    assert s.ranges() == [(1, 3), (10, 12)]


def test_empty_range_rejected():
    with pytest.raises(ValueError):
        IntervalSet().add_range(5, 4)


def test_contains_boundaries():
    s = IntervalSet([(5, 10)])
    assert 5 in s and 10 in s
    assert 4 not in s and 11 not in s


def test_missing_between():
    s = IntervalSet([(1, 3), (6, 7)])
    assert s.missing_between(1, 8) == [4, 5, 8]
    assert s.missing_between(2, 3) == []
    assert s.missing_between(10, 12) == [10, 11, 12]
    assert s.missing_between(5, 4) == []


def test_difference_values():
    ours = IntervalSet([(1, 5)])
    theirs = IntervalSet([(2, 3)])
    assert list(ours.difference_values(theirs)) == [1, 4, 5]


def test_merge_two_sets():
    a = IntervalSet([(1, 2), (10, 11)])
    b = IntervalSet([(3, 4), (11, 15)])
    a.merge(b)
    assert a.ranges() == [(1, 4), (10, 15)]


def test_iteration_and_len():
    s = IntervalSet([(1, 3), (7, 8)])
    assert list(s) == [1, 2, 3, 7, 8]
    assert len(s) == 5


def test_equality():
    assert IntervalSet([(1, 3)]) == IntervalSet([(1, 2), (3, 3)])
    assert IntervalSet([(1, 3)]) != IntervalSet([(1, 4)])


def test_min_max():
    s = IntervalSet([(4, 6), (10, 12)])
    assert s.min_value == 4
    assert s.max_value == 12
