"""Unit tests for windows, triggers, and evictors (Section 6.1)."""

import pytest

from repro.core.events import Event
from repro.core.windows import (
    ClearAll,
    CountWindow,
    EveryInterval,
    EvictOlderThan,
    KeepAll,
    KeepLast,
    OnCount,
    OnEveryEvent,
    TimeWindow,
    WindowInstance,
)


def ev(seq: int, at: float) -> Event:
    return Event(sensor_id="s", seq=seq, emitted_at=at, value=seq, size_bytes=4)


def collect_window(spec):
    fired = []
    return WindowInstance(stream="s", spec=spec, on_fire=fired.append), fired


# -- count windows -----------------------------------------------------------------


def test_count_window_fires_when_full():
    window, fired = collect_window(CountWindow(3))
    assert not window.add(ev(1, 0.0), 0.0)
    assert not window.add(ev(2, 0.1), 0.1)
    assert window.add(ev(3, 0.2), 0.2)
    assert len(fired) == 1
    assert [e.seq for e in fired[0].events] == [1, 2, 3]


def test_count_window_clears_by_default():
    window, fired = collect_window(CountWindow(2))
    for seq in range(1, 5):
        window.add(ev(seq, seq * 0.1), seq * 0.1)
    assert len(fired) == 2
    assert [e.seq for e in fired[0]] == [1, 2]
    assert [e.seq for e in fired[1]] == [3, 4]


def test_count_window_of_one_is_per_event():
    window, fired = collect_window(CountWindow(1))
    window.add(ev(1, 0.0), 0.0)
    window.add(ev(2, 0.1), 0.1)
    assert len(fired) == 2


def test_sliding_count_window_keeps_last():
    spec = CountWindow(3, evictor=KeepLast(2))
    window, fired = collect_window(spec)
    for seq in range(1, 6):
        window.add(ev(seq, seq * 0.1), seq * 0.1)
    # Fires at 3, then every event keeps the buffer at 3 (two survivors + 1).
    assert [[e.seq for e in f] for f in fired] == [[1, 2, 3], [2, 3, 4], [3, 4, 5]]


def test_count_bound_drops_oldest():
    spec = CountWindow(2, trigger=OnCount(100))  # never fires on its own
    window, fired = collect_window(spec)
    for seq in range(1, 5):
        window.add(ev(seq, seq * 0.1), seq * 0.1)
    assert [e.seq for e in window.buffered] == [3, 4]
    assert fired == []


def test_count_window_validation():
    with pytest.raises(ValueError):
        CountWindow(0)
    with pytest.raises(ValueError):
        OnCount(0)


# -- time windows -------------------------------------------------------------------------


def test_time_window_defaults_to_interval_trigger():
    spec = TimeWindow(60.0)
    assert isinstance(spec.trigger, EveryInterval)
    assert spec.trigger.interval == 60.0
    assert isinstance(spec.evictor, ClearAll)


def test_time_window_bounds_by_span():
    spec = TimeWindow(10.0, trigger=OnCount(100))
    window, _ = collect_window(spec)
    window.add(ev(1, 0.0), 0.0)
    window.add(ev(2, 5.0), 5.0)
    window.add(ev(3, 12.0), 12.0)
    assert [e.seq for e in window.buffered] == [2, 3]


def test_time_window_fire_rebounds_aged_events():
    spec = TimeWindow(10.0)
    window, fired = collect_window(spec)
    window.add(ev(1, 1.0), 1.0)
    snapshot = window.fire(20.0)  # event aged out before the periodic fire
    assert snapshot.empty
    assert fired[0].empty


def test_time_window_validation():
    with pytest.raises(ValueError):
        TimeWindow(0.0)
    with pytest.raises(ValueError):
        EveryInterval(0.0)


# -- evictors ---------------------------------------------------------------------------------


def test_evict_older_than():
    evictor = EvictOlderThan(5.0)
    buffer = [ev(1, 0.0), ev(2, 6.0), ev(3, 9.0)]
    assert [e.seq for e in evictor.evict(buffer, 10.0)] == [2, 3]


def test_keep_all_and_clear_all():
    buffer = [ev(1, 0.0)]
    assert KeepAll().evict(buffer, 1.0) == buffer
    assert ClearAll().evict(buffer, 1.0) == []


def test_keep_last_zero():
    assert KeepLast(0).evict([ev(1, 0.0)], 1.0) == []
    with pytest.raises(ValueError):
        KeepLast(-1)


def test_on_every_event_trigger():
    assert OnEveryEvent().on_event([ev(1, 0.0)])
    assert not OnEveryEvent().on_event([])


# -- triggered snapshots --------------------------------------------------------------------------


def test_triggered_window_accessors():
    window, fired = collect_window(CountWindow(2))
    window.add(ev(1, 0.0), 0.0)
    window.add(ev(2, 0.5), 0.5)
    snapshot = fired[0]
    assert snapshot.stream == "s"
    assert snapshot.values() == [1, 2]
    assert len(snapshot) == 2
    assert not snapshot.empty
    assert snapshot.fired_at == 0.5
