"""Unit tests for the latency and processing cost models."""

import pytest

from repro.net.latency import LatencyModel, ProcessingModel
from repro.sim.random import RandomSource


def test_base_delay_for_tiny_message():
    model = LatencyModel(jitter_fraction=0.0)
    delay = model.message_delay(100, live_processes=2)
    # ~1.2 ms base + negligible transfer/serialization.
    assert 0.001 < delay < 0.002


def test_delay_scales_with_size():
    model = LatencyModel(jitter_fraction=0.0)
    small = model.message_delay(100)
    large = model.message_delay(100_000)
    assert large > small * 5


def test_congestion_grows_with_process_count():
    model = LatencyModel(jitter_fraction=0.0)
    base = model.message_delay(100, live_processes=2)
    busy = model.message_delay(100, live_processes=5)
    assert busy - base == pytest.approx(3 * model.congestion_per_process)


def test_jitter_bounded():
    model = LatencyModel(jitter_fraction=0.1)
    rng = RandomSource(1)
    nominal = model.message_delay(100, live_processes=2)
    for _ in range(100):
        delay = model.message_delay(100, live_processes=2, rng=rng)
        assert nominal * 0.89 <= delay <= nominal * 1.11


def test_processing_model_validation():
    with pytest.raises(ValueError):
        ProcessingModel(local_dispatch=-0.001)


def test_calibration_shape_gapless_premium():
    """The ingest-log cost dominates the per-hop cost: this is what makes
    Fig. 4a's Gapless premium ~flat-ish between 2 and 3 processes."""
    processing = ProcessingModel()
    assert processing.gapless_ingest_log > 4 * processing.gapless_hop_processing
    assert processing.local_dispatch < 0.001
