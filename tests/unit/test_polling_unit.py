"""Sans-IO unit tests for the poll coordinator's scheduling logic."""

import pytest

from repro.core.delivery import EpochGap, PollingPolicy, PollMode
from repro.core.delivery_service import DeliveryContext, DeviceInfo
from repro.core.eventlog import EventStore
from repro.core.events import Event
from repro.core.plan import DeploymentPlan
from repro.core.polling import PollCoordinator
from repro.membership.heartbeat import HeartbeatService
from repro.net.latency import ProcessingModel
from tests.helpers import FakeEnv


class FakeDelivery:
    """Stands in for a Gap/Gapless instance: records ingests, notifies."""

    def __init__(self):
        self.listeners = []
        self.ingested = []

    def add_seen_listener(self, listener):
        self.listeners.append(listener)

    def on_ingest(self, event):
        self.ingested.append(event)
        for listener in self.listeners:
            listener(event)


class FakeSensorLine:
    """A perfectly prompt sensor link: responds after ``latency`` seconds."""

    def __init__(self, env, latency=0.05, answer=True):
        self.env = env
        self.latency = latency
        self.answer = answer
        self.requests = 0
        self.seq = 0

    def __call__(self, sensor, on_response):
        self.requests += 1
        if not self.answer:
            return
        self.seq += 1
        event = Event(sensor_id=sensor, seq=self.seq,
                      emitted_at=self.env.now() + self.latency,
                      value=21.0, size_bytes=4)
        self.env.schedule(self.latency, on_response, event)


def make_coordinator(
    name="p0", hosts=("p0", "p1", "p2"), *, mode=PollMode.COORDINATED,
    epoch=1.0, retries=1, line=None,
):
    env = FakeEnv(name)
    for host in hosts:
        if host != name:
            env.link(FakeEnv(host, env.scheduler))
    heartbeat = HeartbeatService(env, interval=0.5, timeout=2.0)
    gaps = []
    ctx = DeliveryContext(
        env=env,
        heartbeat=heartbeat,
        plan=DeploymentPlan(processes=list(hosts),
                            sensor_hosts={"t": list(hosts)},
                            actuator_hosts={}, apps=[]),
        store=EventStore(name),
        processing=ProcessingModel(),
        deliver_local=lambda *a: None,
        on_epoch_gap=lambda sensor, gap: gaps.append(gap),
        actuate_local=lambda c: None,
        poll_sensor=lambda *a: None,
        device_info={"t": DeviceInfo(name="t", category="sensor", mode="poll",
                                     service_time=0.1)},
    )
    heartbeat.start()
    delivery = FakeDelivery()
    line = line or FakeSensorLine(env)
    coordinator = PollCoordinator(
        ctx, "t", PollingPolicy(epoch_s=epoch, retries=retries), mode,
        0.1, delivery, line,
    )
    coordinator.start()
    return env, coordinator, delivery, line, gaps


def test_slot_index_comes_from_static_host_order():
    env, coord, *_ = make_coordinator(name="p1")
    assert coord.slot_index == 1
    assert coord.slot_count == 3


def test_requires_active_sensor_node():
    with pytest.raises(ValueError):
        make_coordinator(name="p9", hosts=("p0", "p1"))


def test_slot_zero_polls_each_epoch():
    env, coord, delivery, line, gaps = make_coordinator(name="p0", epoch=1.0)
    env.scheduler.run_until(5.05)
    # one poll per epoch (slot at epoch start), each answered and ingested
    assert line.requests == 6  # epochs 0..5
    assert len(delivery.ingested) >= 5
    assert gaps == []


def test_later_slot_cancels_when_event_arrives_first():
    env, coord, delivery, line, gaps = make_coordinator(name="p1", epoch=1.0)
    # p1's slot is at +1/3 epoch. Simulate the epoch's event arriving first
    # (via ring forwarding from p0's poll).
    def feed_epochs():
        for k in range(5):
            event = Event(sensor_id="t", seq=100 + k, emitted_at=k * 1.0 + 0.05,
                          value=1.0, size_bytes=4, epoch=k)
            env.scheduler.call_at(k * 1.0 + 0.1, delivery.on_ingest, event)

    feed_epochs()
    env.scheduler.run_until(5.0)
    assert line.requests == 0  # every scheduled poll was cancelled


def test_retry_on_silent_poll():
    env, coord, delivery, line, gaps = make_coordinator(
        name="p0", hosts=("p0",), epoch=2.0, retries=2,
    )
    line.answer = False
    env.scheduler.run_until(1.99)  # stay inside epoch 0
    # initial poll + 2 retries within the epoch
    assert line.requests == 3


def test_epoch_gap_reported_when_nothing_arrives():
    env, coord, delivery, line, gaps = make_coordinator(
        name="p0", hosts=("p0",), epoch=1.0,
    )
    line.answer = False
    env.scheduler.run_until(4.0)
    assert gaps
    assert all(isinstance(g, EpochGap) for g in gaps)
    assert gaps[0].sensor == "t"


def test_uncoordinated_never_retries():
    env, coord, delivery, line, gaps = make_coordinator(
        name="p0", hosts=("p0",), mode=PollMode.UNCOORDINATED, epoch=1.0,
        retries=3,
    )
    line.answer = False
    env.scheduler.run_until(3.0)
    # exactly one request per epoch, despite retries=3
    assert line.requests <= 3


def test_polls_issued_counter_and_trace():
    env, coord, delivery, line, gaps = make_coordinator(name="p0", epoch=1.0)
    env.scheduler.run_until(3.05)
    assert coord.polls_issued == line.requests
    assert env.trace_log.count("poll_issued") == coord.polls_issued
