"""Unit tests for the Table 1 application builders (graph wiring + logic).

The operator callbacks are exercised through a minimal fake context, so
each app's decision logic is tested without the platform.
"""

import pytest

from repro.apps.elder_care import fall_alert, inactive_alert
from repro.apps.energy import BillingState, TimeOfDayPricing, appliance_alert, energy_billing
from repro.apps.hvac import occupancy_hvac, temperature_hvac, user_hvac
from repro.apps.intrusion import intrusion_detection
from repro.apps.lighting import automated_lighting
from repro.apps.safety import air_monitoring, flood_fire_alert, surveillance
from repro.apps.tracking import activity_tracking
from repro.core.combiners import CombinedWindows
from repro.core.delivery import GAP, GAPLESS
from repro.core.events import Event
from repro.core.windows import TriggeredWindow


class FakeCtx:
    def __init__(self):
        self.actuations = []
        self.alerts = []
        self.emitted = []
        self.process = "test"

    def now(self):
        return 0.0

    def actuate(self, actuator, action, value=None):
        self.actuations.append((actuator, action, value))

    def alert(self, message, **fields):
        self.alerts.append((message, fields))

    def emit(self, value, size_bytes=8):
        self.emitted.append(value)


def combined(stream_events: dict[str, list]) -> CombinedWindows:
    windows = {}
    for stream, values in stream_events.items():
        events = tuple(
            Event(sensor_id=stream, seq=i + 1, emitted_at=float(i), value=v,
                  size_bytes=4)
            for i, v in enumerate(values)
        )
        windows[stream] = TriggeredWindow(stream=stream, events=events,
                                          fired_at=1.0)
    return CombinedWindows(windows=windows, fired_at=1.0)


def handler(app, operator_name=None):
    op = app.operators[0] if operator_name is None else next(
        o for o in app.operators if o.name == operator_name)
    return op


# -- HVAC ----------------------------------------------------------------------------


def test_occupancy_hvac_setpoints():
    app = occupancy_hvac("occ", "thermo")
    ctx = FakeCtx()
    handler(app).handle_triggered_window(ctx, combined({"occ": [True]}))
    handler(app).handle_triggered_window(ctx, combined({"occ": [False]}))
    assert ctx.actuations == [("thermo", "set_point", 21.5),
                              ("thermo", "set_point", 17.0)]


def test_user_hvac_clothing_scaling():
    app = user_hvac("cam", "thermo")
    ctx = FakeCtx()
    handler(app).handle_triggered_window(ctx, combined({"cam": [1.0]}))
    handler(app).handle_triggered_window(ctx, combined({"cam": [0.0]}))
    heavy, light = ctx.actuations[0][2], ctx.actuations[1][2]
    assert heavy < light  # more clothing -> cooler set-point


def test_temperature_hvac_failure_bounds():
    app_byz = temperature_hvac(["t1", "t2", "t3", "t4"], "hvac")
    # floor((4-1)/3) = 1 tolerated with arbitrary failures
    assert "FTCombiner" in type(handler(app_byz).combiner).__name__
    assert handler(app_byz).combiner.tolerated_failures == 1
    app_fs = temperature_hvac(["t1", "t2", "t3", "t4"], "hvac",
                              arbitrary_failures=False)
    assert handler(app_fs).combiner.tolerated_failures == 3
    with pytest.raises(ValueError):
        temperature_hvac([], "hvac")


def test_temperature_hvac_hysteresis():
    app = temperature_hvac(["t1", "t2", "t3"], "hvac", threshold=23.0,
                           hysteresis=0.5, arbitrary_failures=False)
    ctx = FakeCtx()
    op = handler(app)
    op.handle_triggered_window(ctx, combined({"t1": [25.0], "t2": [25.1],
                                              "t3": [24.9]}))
    assert ("hvac", "cooling", True) in ctx.actuations
    ctx.actuations.clear()
    op.handle_triggered_window(ctx, combined({"t1": [23.2], "t2": [23.1],
                                              "t3": [23.0]}))
    assert ctx.actuations == []  # inside the hysteresis band


# -- safety / elder care -----------------------------------------------------------------


def test_intrusion_requires_sensors():
    with pytest.raises(ValueError):
        intrusion_detection([])


def test_intrusion_disarmed_stays_quiet():
    app = intrusion_detection(["d1"], siren="siren", armed=False)
    ctx = FakeCtx()
    handler(app).handle_triggered_window(ctx, combined({"d1": [True]}))
    assert ctx.alerts == [] and ctx.actuations == []


def test_intrusion_ignores_close_events():
    app = intrusion_detection(["d1"], siren="siren")
    ctx = FakeCtx()
    handler(app).handle_triggered_window(ctx, combined({"d1": [False]}))
    assert ctx.alerts == []


def test_fall_alert_only_on_fall_values():
    app = fall_alert("watch", siren="siren")
    ctx = FakeCtx()
    handler(app).handle_triggered_window(
        ctx, combined({"watch": ["walk", "fall", "sit"]}))
    assert len(ctx.alerts) == 1
    assert ctx.actuations == [("siren", "sound", True)]


def test_inactive_alert_empty_window_alerts():
    app = inactive_alert(["m1", "d1"], inactivity_window_s=60.0)
    ctx = FakeCtx()
    handler(app).handle_triggered_window(ctx, combined({"m1": [], "d1": []}))
    assert len(ctx.alerts) == 1
    ctx.alerts.clear()
    handler(app).handle_triggered_window(ctx, combined({"m1": [True], "d1": []}))
    assert ctx.alerts == []


def test_flood_fire_alerts_per_hazard():
    app = flood_fire_alert(["w1", "s1"], siren="siren")
    ctx = FakeCtx()
    handler(app).handle_triggered_window(
        ctx, combined({"w1": [True], "s1": [False]}))
    assert len(ctx.alerts) == 1
    assert ctx.alerts[0][1]["sensor"] == "w1"


def test_surveillance_known_objects_not_recorded():
    app = surveillance("cam")
    ctx = FakeCtx()
    handler(app).handle_triggered_window(
        ctx, combined({"cam": [{"object": "pet"}]}))
    assert ctx.alerts == []
    handler(app).handle_triggered_window(
        ctx, combined({"cam": [{"object": "stranger"}]}))
    assert len(ctx.alerts) == 1
    assert ctx.emitted and ctx.emitted[0]["record"]


def test_air_monitoring_threshold():
    app = air_monitoring("co2", threshold_ppm=1000.0)
    ctx = FakeCtx()
    handler(app).handle_triggered_window(ctx, combined({"co2": [800.0]}))
    assert ctx.alerts == []
    handler(app).handle_triggered_window(ctx, combined({"co2": [1500.0]}))
    assert len(ctx.alerts) == 1


# -- energy / convenience -----------------------------------------------------------------------


def test_billing_time_of_day_pricing():
    pricing = TimeOfDayPricing(peak_rate=0.30, offpeak_rate=0.10,
                               peak_hours=(16, 21))
    assert pricing.rate_at(17 * 3600.0) == 0.30
    assert pricing.rate_at(3 * 3600.0) == 0.10
    assert pricing.rate_at(21 * 3600.0) == 0.10  # end-exclusive


def test_billing_accumulates_and_deduplicates():
    app, state = energy_billing("meter")
    ctx = FakeCtx()
    op = handler(app, "EnergyBilling")
    window = combined({"meter": [1000.0]})  # 1 kWh in one event
    op.handle_triggered_window(ctx, window)
    op.handle_triggered_window(ctx, window)  # replayed after failover
    assert state.events_counted == 1
    assert state.total_kwh == pytest.approx(1.0)
    assert ctx.emitted  # running total streamed downstream


def test_billing_state_count_api():
    state = BillingState()
    event = Event(sensor_id="m", seq=1, emitted_at=0.0, value=1, size_bytes=4)
    assert state.count(event)
    assert not state.count(event)


def test_appliance_alert_requires_both_streams():
    app = appliance_alert("oven", "occ")
    ctx = FakeCtx()
    op = handler(app)
    op.handle_triggered_window(ctx, combined({"oven": [1800.0], "occ": []}))
    assert ctx.alerts == []
    op.handle_triggered_window(ctx, combined({"oven": [1800.0], "occ": [False]}))
    assert len(ctx.alerts) == 1
    op.handle_triggered_window(ctx, combined({"oven": [1800.0], "occ": [True]}))
    assert len(ctx.alerts) == 1  # occupied: no new alert


def test_lighting_follows_presence():
    app = automated_lighting(["occ", "mic"], "light")
    ctx = FakeCtx()
    op = handler(app)
    op.handle_triggered_window(ctx, combined({"occ": [True], "mic": []}))
    op.handle_triggered_window(ctx, combined({"occ": [], "mic": []}))
    assert ctx.actuations == [("light", "power", True),
                              ("light", "power", False)]
    with pytest.raises(ValueError):
        automated_lighting([], "light")


def test_activity_tracking_classification():
    app = activity_tracking("mic", active_threshold=0.5)
    ctx = FakeCtx()
    op = handler(app)
    op.handle_triggered_window(ctx, combined({"mic": [0.9, 0.8]}))
    op.handle_triggered_window(ctx, combined({"mic": [0.1]}))
    op.handle_triggered_window(ctx, combined({"mic": []}))
    assert [e["activity"] for e in ctx.emitted] == ["active", "quiet", "unknown"]


def test_delivery_guarantees_match_table1():
    assert all(b.delivery is GAP
               for b in handler(occupancy_hvac("o", "t")).sensor_bindings)
    assert all(b.delivery is GAPLESS
               for b in handler(intrusion_detection(["d"])).sensor_bindings)
    assert all(b.delivery is GAPLESS
               for b in handler(fall_alert("w")).sensor_bindings)
