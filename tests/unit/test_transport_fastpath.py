"""Transport fast-path behaviors: the pair cache, the endpoints view and
the fire-and-forget delivery lane must be invisible to callers."""

import pytest

from repro.net.message import Message
from repro.net.transport import HomeNetwork
from repro.sim.random import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace


class Sink:
    def __init__(self, name: str):
        self.name = name
        self.alive = True
        self.received: list[Message] = []

    def deliver(self, message: Message) -> None:
        self.received.append(message)


def make_net():
    sched = Scheduler()
    trace = Trace()
    net = HomeNetwork(sched, RandomSource(1), trace)
    return sched, trace, net


def test_endpoints_view_is_read_only():
    _sched, _trace, net = make_net()
    a = Sink("a")
    net.register(a)
    view = net.endpoints
    assert view["a"] is a
    with pytest.raises(TypeError):
        view["b"] = Sink("b")
    with pytest.raises(TypeError):
        del view["a"]


def test_endpoints_view_is_live_not_a_snapshot():
    _sched, _trace, net = make_net()
    view = net.endpoints
    assert "a" not in view
    net.register(Sink("a"))
    assert "a" in view
    assert dict(net.endpoints) == dict(view)  # explicit copy still works


def test_register_after_send_patches_cached_sender_slot():
    """A pair cached while the sender was unregistered must pick up the
    real endpoint on registration, or crash gating would never engage."""
    sched, _trace, net = make_net()
    b = Sink("b")
    net.register(b)
    net.send(Message("m", "a", "b", {}))
    sched.run()
    assert len(b.received) == 1

    a = Sink("a")
    net.register(a)
    a.alive = False
    net.send(Message("m", "a", "b", {}))
    sched.run()
    # The dead sender's message must not have been transmitted.
    assert len(b.received) == 1
    assert net.messages_sent() == 1


def test_fifo_order_survives_pair_cache():
    sched, _trace, net = make_net()
    a, b = Sink("a"), Sink("b")
    net.register(a)
    net.register(b)
    for seq in range(20):
        net.send(Message("m", "a", "b", {"seq": seq}))
    sched.run()
    assert [m["seq"] for m in b.received] == list(range(20))


def test_unknown_destination_still_raises():
    _sched, _trace, net = make_net()
    net.register(Sink("a"))
    with pytest.raises(KeyError):
        net.send(Message("m", "a", "ghost", {}))


def test_aggregates_match_trace_records_with_keeping_enabled():
    """The inlined aggregate bumps and the generic record path must agree:
    run with kept events (slow path) and compare against counters."""
    sched, trace, net = make_net()
    a, b = Sink("a"), Sink("b")
    net.register(a)
    net.register(b)
    for seq in range(10):
        net.send(Message("m", "a", "b", {"seq": seq}))
    sched.run()
    assert trace.count("net_send") == len(trace.of_kind("net_send")) == 10
    assert trace.count("net_deliver") == 10
    assert trace.pair_count("net_send", "a", "b") == 10
    assert net.messages_sent(kinds={"m"}) == 10
    assert net.bytes_sent() == sum(
        e["bytes"] for e in trace.of_kind("net_send")
    )


def test_aggregates_only_trace_counts_identically():
    def totals(trace):
        sched = Scheduler()
        net = HomeNetwork(sched, RandomSource(1), trace)
        a, b = Sink("a"), Sink("b")
        net.register(a)
        net.register(b)
        for seq in range(25):
            net.send(Message("m", "a", "b", {"seq": seq}))
        sched.run()
        return (
            trace.count("net_send"),
            trace.count("net_deliver"),
            trace.bytes_of_kind("net_send"),
            trace.pair_count("net_deliver", "a", "b"),
        )

    kept = totals(Trace())
    quiet = totals(Trace(quiet=True))
    unstored = totals(Trace(keep_kinds=set()))
    assert kept == quiet == unstored


def make_mcast_net():
    # The quiescent path only engages when net_send/net_deliver records are
    # aggregate-only (the fleet configuration); net_drop stays kept so drop
    # records can be asserted directly.
    sched = Scheduler()
    trace = Trace(keep_kinds={"net_drop"})
    net = HomeNetwork(sched, RandomSource(1), trace)
    sinks = [Sink(n) for n in ("a", "b", "c")]
    for sink in sinks:
        net.register(sink)
    return sched, trace, net, sinks


def test_quiescent_multicast_delivers_to_every_peer():
    sched, trace, net, (a, b, c) = make_mcast_net()
    assert net.send_multicast("a", ("b", "c"), "keepalive")
    sched.run()
    assert len(b.received) == 1 and len(c.received) == 1
    assert trace.count("net_send") == 2
    assert trace.count("net_deliver") == 2


def test_partition_disables_the_quiescent_multicast_path():
    """An active partition must force the caller back onto per-message
    send() so per-peer drops are recorded exactly as before."""
    sched, trace, net, (a, b, c) = make_mcast_net()
    assert net.send_multicast("a", ("b", "c"), "keepalive")
    sched.run()
    net.partition.set_partition([("a",), ("b", "c")])
    assert not net.send_multicast("a", ("b", "c"), "keepalive")
    net.partition.heal()
    assert net.send_multicast("a", ("b", "c"), "keepalive")
    sched.run()
    assert len(b.received) == 2 and len(c.received) == 2


def test_partition_drops_in_flight_quiescent_copies():
    """Copies posted before a partition appears are lost at delivery time,
    with the same net_drop record the generic path produces."""
    sched, trace, net, (a, b, c) = make_mcast_net()
    assert net.send_multicast("a", ("b", "c"), "keepalive")
    net.partition.set_partition([("a",), ("b", "c")])
    sched.run()
    assert b.received == [] and c.received == []
    drops = trace.of_kind("net_drop")
    assert len(drops) == 2
    assert all(e["reason"] == "partition" for e in drops)


def test_crashed_destination_drops_quiescent_copy():
    sched, trace, net, (a, b, c) = make_mcast_net()
    assert net.send_multicast("a", ("b", "c"), "keepalive")
    b.alive = False
    sched.run()
    assert b.received == []
    assert len(c.received) == 1
    drops = trace.of_kind("net_drop")
    assert len(drops) == 1
    assert drops[0]["reason"] == "dst_crashed"


def test_membership_change_invalidates_cached_plan():
    """Registering a new endpoint bumps the epoch: the next multicast must
    rebuild its plan instead of reusing a stale peer set."""
    sched, trace, net, (a, b, c) = make_mcast_net()
    assert net.send_multicast("a", ("b", "c"), "keepalive")
    plan_before = net._mcast_plans["a"]
    d = Sink("d")
    net.register(d)
    assert net.send_multicast("a", ("b", "c", "d"), "keepalive")
    sched.run()
    assert net._mcast_plans["a"] is not plan_before
    assert len(d.received) == 1


def test_multicast_digest_matches_per_message_sends():
    """The express lane's digest bytes must be exactly the per-message
    path's: same records, same order, same payload reprs."""
    def run(multicast):
        sched = Scheduler()
        trace = Trace(digest=True, keep_kinds=set())
        net = HomeNetwork(sched, RandomSource(1), trace)
        sinks = [Sink(n) for n in ("a", "b", "c")]
        for sink in sinks:
            net.register(sink)
        for _ in range(50):
            if multicast:
                assert net.send_multicast("a", ("b", "c"), "keepalive")
            else:
                for dst in ("b", "c"):
                    net.send(Message("keepalive", "a", dst))
            sched.run()
        return trace.digest()

    assert run(multicast=True) == run(multicast=False)
