"""Unit tests for the durable event store."""

from repro.core.eventlog import EventStore, SensorLog
from repro.core.events import Event


def make_event(seq: int, sensor: str = "s", at: float | None = None) -> Event:
    return Event(sensor_id=sensor, seq=seq, emitted_at=at if at is not None else seq,
                 value=seq, size_bytes=4)


def test_add_and_dedup():
    log = SensorLog("s")
    assert log.add(make_event(1))
    assert not log.add(make_event(1))
    assert len(log) == 1
    assert 1 in log
    assert 2 not in log


def test_events_after_watermark():
    log = SensorLog("s")
    for seq in (1, 2, 3, 5, 6):
        log.add(make_event(seq))
    assert [e.seq for e in log.events_after(2)] == [3, 5, 6]
    assert [e.seq for e in log.events_after(0)] == [1, 2, 3, 5, 6]
    assert log.events_after(6) == []


def test_events_missing_from_peer():
    log = SensorLog("s")
    for seq in range(1, 8):
        log.add(make_event(seq))
    missing = log.events_missing_from([(1, 2), (5, 5)])
    assert [e.seq for e in missing] == [3, 4, 6, 7]


def test_missing_from_empty_peer_is_everything():
    log = SensorLog("s")
    log.add(make_event(3))
    assert [e.seq for e in log.events_missing_from([])] == [3]


def test_last_timestamp():
    log = SensorLog("s")
    assert log.last_timestamp == 0.0
    log.add(make_event(1, at=10.0))
    log.add(make_event(2, at=20.0))
    assert log.last_timestamp == 20.0


def test_store_routes_by_sensor():
    store = EventStore("proc")
    store.add(make_event(1, sensor="a"))
    store.add(make_event(1, sensor="b"))
    assert store.total_events() == 2
    assert store.sensors == ["a", "b"]
    assert store.has_seen(make_event(1, sensor="a"))
    assert not store.has_seen(make_event(2, sensor="a"))


def test_store_log_identity_is_stable():
    store = EventStore("proc")
    assert store.log_for("x") is store.log_for("x")
