"""Unit tests for partition bookkeeping."""

import pytest

from repro.net.partition import PartitionState


def test_connected_by_default():
    state = PartitionState()
    assert not state.partitioned
    assert state.can_communicate("a", "b")


def test_groups_isolate():
    state = PartitionState()
    state.set_partition([["a", "b"], ["c"]])
    assert state.partitioned
    assert state.can_communicate("a", "b")
    assert not state.can_communicate("a", "c")
    assert not state.can_communicate("c", "b")


def test_self_always_reachable():
    state = PartitionState()
    state.set_partition([["a"], ["b"]])
    assert state.can_communicate("a", "a")


def test_unlisted_process_is_cut_off():
    state = PartitionState()
    state.set_partition([["a", "b"]])
    assert not state.can_communicate("a", "z")
    assert not state.can_communicate("z", "a")


def test_process_in_two_groups_rejected():
    state = PartitionState()
    with pytest.raises(ValueError):
        state.set_partition([["a"], ["a", "b"]])


def test_isolate_every_process():
    state = PartitionState()
    state.isolate(["a", "b", "c"])
    assert not state.can_communicate("a", "b")
    assert not state.can_communicate("b", "c")


def test_heal_restores_connectivity():
    state = PartitionState()
    state.set_partition([["a"], ["b"]])
    state.heal()
    assert state.can_communicate("a", "b")
    assert not state.partitioned
