"""Unit tests for the asyncio runtime's wire format."""

import pytest

from repro.core.events import Command, Event
from repro.net.message import Message
from repro.net.wire import ProcessIdSet
from repro.rt.wire import WireError, decode_body, encode_message


def roundtrip(message: Message) -> Message:
    frame = encode_message(message)
    length = int.from_bytes(frame[:4], "big")
    body = frame[4:]
    assert len(body) == length
    return decode_body(body)


def test_plain_payload_roundtrip():
    message = Message(kind="k", src="a", dst="b",
                      payload={"x": 1, "y": 2.5, "z": "str", "w": None, "b": True})
    decoded = roundtrip(message)
    assert decoded.kind == "k"
    assert decoded.payload == message.payload


def test_event_roundtrip():
    event = Event(sensor_id="door", seq=7, emitted_at=1.25, value=True,
                  size_bytes=4, epoch=3)
    decoded = roundtrip(Message(kind="k", src="a", dst="b",
                                payload={"event": event}))
    assert decoded["event"] == event
    assert decoded["event"].epoch == 3
    assert decoded["event"].value is True


def test_command_roundtrip():
    command = Command(actuator_id="light", seq=2, issued_at=9.0, action="set",
                      value=False, issued_by="app@p1")
    decoded = roundtrip(Message(kind="k", src="a", dst="b",
                                payload={"command": command}))
    assert decoded["command"] == command


def test_process_id_set_roundtrip():
    ids = ProcessIdSet({"p0", "p1"})
    decoded = roundtrip(Message(kind="k", src="a", dst="b", payload={"S": ids}))
    assert isinstance(decoded["S"], ProcessIdSet)
    assert set(decoded["S"]) == {"p0", "p1"}


def test_nested_containers_roundtrip():
    payload = {"ranges": [(1, 5), (9, 9)], "map": {"k": [1, 2]}}
    decoded = roundtrip(Message(kind="k", src="a", dst="b", payload=payload))
    # Tuples come back as lists; protocol code normalizes.
    assert decoded["ranges"] == [[1, 5], [9, 9]]
    assert decoded["map"] == {"k": [1, 2]}


def test_set_roundtrip_as_frozenset():
    decoded = roundtrip(Message(kind="k", src="a", dst="b",
                                payload={"s": frozenset({"x", "y"})}))
    assert decoded["s"] == frozenset({"x", "y"})


def test_unserializable_payload_rejected():
    with pytest.raises(WireError):
        encode_message(Message(kind="k", src="a", dst="b",
                               payload={"obj": object()}))


def test_malformed_body_rejected():
    with pytest.raises(WireError):
        decode_body(b"not json")
    with pytest.raises(WireError):
        decode_body(b'{"kind": "k"}')
