"""Unit tests for the asyncio runtime's wire format."""

import pytest

from repro.core.events import Command, Event
from repro.net.message import Message
from repro.net.wire import ProcessIdSet
from repro.rt.wire import (
    HEADER_SIZE,
    MAX_FRAME,
    WIRE_VERSION,
    WireError,
    decode_body,
    encode_message,
    frame_kind,
    split_frame,
)


def roundtrip(message: Message) -> Message:
    frame = encode_message(message)
    version, body = split_frame(frame)
    assert version == WIRE_VERSION
    assert len(body) == len(frame) - HEADER_SIZE
    return decode_body(body)


def test_plain_payload_roundtrip():
    message = Message(kind="k", src="a", dst="b",
                      payload={"x": 1, "y": 2.5, "z": "str", "w": None, "b": True})
    decoded = roundtrip(message)
    assert decoded.kind == "k"
    assert decoded.payload == message.payload


def test_event_roundtrip():
    event = Event(sensor_id="door", seq=7, emitted_at=1.25, value=True,
                  size_bytes=4, epoch=3)
    decoded = roundtrip(Message(kind="k", src="a", dst="b",
                                payload={"event": event}))
    assert decoded["event"] == event
    assert decoded["event"].epoch == 3
    assert decoded["event"].value is True


def test_command_roundtrip():
    command = Command(actuator_id="light", seq=2, issued_at=9.0, action="set",
                      value=False, issued_by="app@p1")
    decoded = roundtrip(Message(kind="k", src="a", dst="b",
                                payload={"command": command}))
    assert decoded["command"] == command


def test_process_id_set_roundtrip():
    ids = ProcessIdSet({"p0", "p1"})
    decoded = roundtrip(Message(kind="k", src="a", dst="b", payload={"S": ids}))
    assert isinstance(decoded["S"], ProcessIdSet)
    assert set(decoded["S"]) == {"p0", "p1"}


def test_nested_containers_roundtrip():
    payload = {"ranges": [(1, 5), (9, 9)], "map": {"k": [1, 2]}}
    decoded = roundtrip(Message(kind="k", src="a", dst="b", payload=payload))
    # Tuples come back as lists; protocol code normalizes.
    assert decoded["ranges"] == [[1, 5], [9, 9]]
    assert decoded["map"] == {"k": [1, 2]}


def test_set_roundtrip_as_frozenset():
    decoded = roundtrip(Message(kind="k", src="a", dst="b",
                                payload={"s": frozenset({"x", "y"})}))
    assert decoded["s"] == frozenset({"x", "y"})


def test_unserializable_payload_rejected():
    with pytest.raises(WireError):
        encode_message(Message(kind="k", src="a", dst="b",
                               payload={"obj": object()}))


def test_malformed_body_rejected():
    with pytest.raises(WireError):
        decode_body(b"not json")
    with pytest.raises(WireError):
        decode_body(b'{"kind": "k"}')
    with pytest.raises(WireError):
        decode_body(b"[1, 2, 3]")


def test_frame_carries_version_byte():
    frame = encode_message(Message(kind="k", src="a", dst="b", payload={}))
    assert frame[0] == WIRE_VERSION
    assert int.from_bytes(frame[1:5], "big") == len(frame) - HEADER_SIZE


def test_wrong_version_rejected_loudly():
    frame = bytearray(encode_message(Message(kind="k", src="a", dst="b", payload={})))
    frame[0] = WIRE_VERSION + 1
    with pytest.raises(WireError, match="version"):
        split_frame(bytes(frame))


def test_oversized_length_rejected():
    header = bytes([WIRE_VERSION]) + (MAX_FRAME + 1).to_bytes(4, "big")
    with pytest.raises(WireError, match="MAX_FRAME"):
        split_frame(header + b"x")


def test_truncated_header_rejected():
    with pytest.raises(WireError, match="truncated"):
        split_frame(b"\x01\x00")


def test_length_body_mismatch_rejected():
    frame = encode_message(Message(kind="k", src="a", dst="b", payload={}))
    with pytest.raises(WireError):
        split_frame(frame + b"trailing")


def test_frame_kind_peeks_without_decoding():
    frame = encode_message(Message(kind="hb/keepalive", src="a", dst="b", payload={}))
    assert frame_kind(frame) == "hb/keepalive"
    assert frame_kind(b"\x01\x00\x00\x00\x03abc") is None


def _read_from_bytes(data: bytes):
    import asyncio

    from repro.rt.wire import read_frame

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


def test_read_frame_rejects_wrong_version_on_stream():
    bad = bytearray(encode_message(Message(kind="k", src="a", dst="b", payload={})))
    bad[0] = 9
    with pytest.raises(WireError, match="version"):
        _read_from_bytes(bytes(bad))


def test_read_frame_rejects_oversized_length_on_stream():
    with pytest.raises(WireError, match="MAX_FRAME"):
        _read_from_bytes(bytes([WIRE_VERSION]) + (2**31).to_bytes(4, "big"))
