"""Unit tests for runtime-agnostic RunRecord production (repro.core.records)."""

from repro.core.records import (
    app_consumers,
    build_run_record,
    normalize_trace,
    snapshot_processes,
)
from repro.sim.tracing import Trace


class FakeView:
    def __init__(self, members):
        self.members = set(members)


class FakeHeartbeat:
    def __init__(self, members):
        self.view = FakeView(members)


class FakeInstance:
    def __init__(self, guarantee_name):
        self.guarantee_name = guarantee_name


class FakeDelivery:
    def __init__(self, modes):
        self.instances = {s: FakeInstance(m) for s, m in modes.items()}


class FakeProcess:
    """Structurally what both RivuletProcess and AsyncRivuletNode expose."""

    def __init__(self, alive=True, members=(), modes=None):
        self.alive = alive
        self.heartbeat = FakeHeartbeat(members)
        self.delivery = FakeDelivery(modes or {})


class FakeOperator:
    def __init__(self, sensors):
        self._sensors = sensors


class FakeApp:
    def __init__(self, name, sensors):
        self.name = name
        self._sensors = sensors

    def sensor_requirements(self):
        return {s: object() for s in self._sensors}


# -- normalize_trace -------------------------------------------------------------------


def test_normalize_trace_rebases_record_times():
    trace = Trace()
    trace.record(1000.5, "ingest", sensor="s1", seq=1)
    trace.record(1002.0, "logic_delivery", app="a", sensor="s1", seq=1,
                 delay=0.25)
    normalized = normalize_trace(trace, origin=1000.0)
    times = [event.time for event in normalized.events]
    assert times == [0.5, 2.0]
    # Relative fields are untouched.
    assert normalized.events[1]["delay"] == 0.25


def test_normalize_trace_rebases_absolute_emitted_at():
    trace = Trace()
    trace.record(1001.0, "ingest", sensor="s1", seq=1, emitted_at=1000.75)
    normalized = normalize_trace(trace, origin=1000.0)
    assert normalized.events[0]["emitted_at"] == 0.75


def test_normalize_trace_leaves_non_numeric_emitted_at_alone():
    trace = Trace()
    trace.record(1001.0, "odd", emitted_at="n/a")
    trace.record(1002.0, "odd", emitted_at=True)  # bool is not a timestamp
    normalized = normalize_trace(trace, origin=1000.0)
    assert normalized.events[0]["emitted_at"] == "n/a"
    assert normalized.events[1]["emitted_at"] is True


def test_normalize_trace_preserves_counts():
    trace = Trace()
    for i in range(5):
        trace.record(10.0 + i, "ingest", sensor="s1", seq=i)
    normalized = normalize_trace(trace, origin=10.0)
    assert normalized.count("ingest") == 5


# -- snapshot_processes ----------------------------------------------------------------


def test_snapshot_reads_liveness_views_and_modes():
    processes = {
        "p0": FakeProcess(members={"p0", "p1"}, modes={"s1": "gapless"}),
        "p1": FakeProcess(members={"p0", "p1"}, modes={"s1": "gapless"}),
    }
    alive, views, modes = snapshot_processes(processes)
    assert alive == {"p0": True, "p1": True}
    assert views == {"p0": frozenset({"p0", "p1"}),
                     "p1": frozenset({"p0", "p1"})}
    assert modes == {"s1": "gapless"}


def test_snapshot_dead_process_contributes_liveness_only():
    processes = {
        "p0": FakeProcess(members={"p0"}, modes={"s1": "gap"}),
        "p1": FakeProcess(alive=False, members={"p0", "p1"},
                          modes={"s1": "stale"}),
    }
    alive, views, modes = snapshot_processes(processes)
    assert alive == {"p0": True, "p1": False}
    assert "p1" not in views
    assert modes == {"s1": "gap"}


# -- app_consumers ---------------------------------------------------------------------


def test_app_consumers_orders_by_deployment():
    apps = [FakeApp("alarm", ["m1", "d1"]), FakeApp("watch", ["d1"])]
    assert app_consumers(apps) == {
        "m1": ("alarm",),
        "d1": ("alarm", "watch"),
    }


# -- build_run_record ------------------------------------------------------------------


def test_build_run_record_from_processes():
    trace = Trace()
    trace.record(0.5, "sensor_emit", sensor="s1", seq=1)
    processes = {"p0": FakeProcess(members={"p0"}, modes={"s1": "gapless"})}
    record = build_run_record(
        trace, processes=processes, apps=[FakeApp("a", ["s1"])],
        fault_free=True,
    )
    assert record.alive == {"p0": True}
    assert record.sensor_modes == {"s1": "gapless"}
    assert record.consumers == {"s1": ("a",)}
    assert record.fault_free is True


def test_build_run_record_explicit_mappings_override_snapshot():
    record = build_run_record(
        Trace(),
        alive={"p0": True, "p1": False},
        views={"p0": {"p0"}},
        sensor_modes={"s1": "gap"},
        consumers={"s1": ("a",)},
    )
    assert record.alive == {"p0": True, "p1": False}
    assert record.views == {"p0": frozenset({"p0"})}
    assert record.sensor_modes == {"s1": "gap"}


def test_build_run_record_time_origin_rebases_everything():
    trace = Trace()
    trace.record(100.2, "sensor_emit", sensor="s1", seq=1, emitted_at=100.2)
    record = build_run_record(
        trace,
        actuations=[("a1", ("a1", "app@p0", 1), 100.9)],
        applied_actions=[("a1", "set", True, 100.9)],
        time_origin=100.0,
    )
    assert abs(record.trace.events[0].time - 0.2) < 1e-9
    assert abs(record.trace.events[0]["emitted_at"] - 0.2) < 1e-9
    assert abs(record.actuations[0][2] - 0.9) < 1e-9
    assert abs(record.applied_actions[0][3] - 0.9) < 1e-9


def test_build_run_record_sorts_actuations_by_time():
    record = build_run_record(
        Trace(),
        actuations=[("a1", ("a1", "x", 2), 5.0), ("a1", ("a1", "x", 1), 1.0)],
        applied_actions=[("a1", "set", 2, 5.0), ("a1", "set", 1, 1.0)],
    )
    assert [c[2] for c in record.actuations] == [1.0, 5.0]
    assert [a[3] for a in record.applied_actions] == [1.0, 5.0]
