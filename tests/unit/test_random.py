"""Unit tests for named hierarchical random streams."""

from repro.sim.random import RandomSource


def test_same_seed_same_draws():
    a = RandomSource(123)
    b = RandomSource(123)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_children_are_independent_of_sibling_consumption():
    root1 = RandomSource(9)
    first = root1.child("alpha")
    draws_before = [first.random() for _ in range(3)]

    root2 = RandomSource(9)
    # Consume a *different* child first: alpha's stream must not change.
    other = root2.child("beta")
    [other.random() for _ in range(100)]
    second = root2.child("alpha")
    assert [second.random() for _ in range(3)] == draws_before


def test_distinct_names_distinct_streams():
    root = RandomSource(1)
    a = root.child("a")
    b = root.child("b")
    assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]


def test_nested_children_stable():
    assert (
        RandomSource(5).child("x").child("y").random()
        == RandomSource(5).child("x").child("y").random()
    )


def test_chance_extremes():
    rng = RandomSource(3)
    assert not rng.chance(0.0)
    assert rng.chance(1.0)
    assert not rng.chance(-1.0)
    assert rng.chance(2.0)


def test_chance_rate_roughly_matches():
    rng = RandomSource(11)
    hits = sum(rng.chance(0.3) for _ in range(20_000))
    assert 0.28 < hits / 20_000 < 0.32


def test_jittered_within_bounds():
    rng = RandomSource(4)
    for _ in range(200):
        value = rng.jittered(10.0, 0.2)
        assert 8.0 <= value <= 12.0


def test_weighted_choice_respects_weights():
    rng = RandomSource(8)
    picks = [rng.weighted_choice([("a", 9.0), ("b", 1.0)]) for _ in range(5_000)]
    share_a = picks.count("a") / len(picks)
    assert share_a > 0.85


def test_uniform_and_randint_ranges():
    rng = RandomSource(2)
    for _ in range(100):
        assert 1.0 <= rng.uniform(1.0, 2.0) <= 2.0
        assert 3 <= rng.randint(3, 6) <= 6
