"""Unit tests for the randomized fault-schedule generator and shrinker."""

import pytest

from repro.sim.chaos import (
    FAULT_WINDOW,
    FaultDomain,
    FaultScheduleGenerator,
    IntensityProfile,
    PROFILES,
    normalize,
    shrink,
)
from repro.sim.faults import FaultPlan

HORIZON = 3600.0


def domain() -> FaultDomain:
    return FaultDomain(
        processes=("p0", "p1", "p2"),
        sensors=("s1", "s2"),
        actuators=("a1",),
        links=(("s1", "p0"), ("s2", "p1")),
    )


def generator(profile: str = "severe") -> FaultScheduleGenerator:
    return FaultScheduleGenerator(domain(), PROFILES[profile], HORIZON)


# -- sampling -----------------------------------------------------------------


def test_same_seed_same_plan():
    a = generator().generate(7)
    b = generator().generate(7)
    assert a.actions == b.actions
    assert len(a) > 0


def test_different_seeds_differ():
    plans = {tuple(generator().generate(s).actions) for s in range(5)}
    assert len(plans) > 1


@pytest.mark.parametrize("seed", range(8))
def test_actions_stay_inside_the_fault_window(seed):
    lo, hi = HORIZON * FAULT_WINDOW[0], HORIZON * FAULT_WINDOW[1]
    plan = generator().generate(seed)
    for action in plan.actions:
        assert lo <= action.at <= hi


@pytest.mark.parametrize("seed", range(8))
def test_crashes_pair_with_recoveries(seed):
    plan = generator().generate(seed)
    down: set[str] = set()
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    for _, action in ordered:
        if action.kind == "crash_process":
            assert action.args[0] not in down
            down.add(action.args[0])
        elif action.kind == "recover_process":
            assert action.args[0] in down
            down.discard(action.args[0])
    assert not down, "every crash must have a matching recovery"


@pytest.mark.parametrize("seed", range(8))
def test_at_least_one_process_stays_up(seed):
    plan = generator().generate(seed)
    total = len(domain().processes)
    down: set[str] = set()
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    for _, action in ordered:
        if action.kind == "crash_process":
            down.add(action.args[0])
        elif action.kind == "recover_process":
            down.discard(action.args[0])
        assert len(down) < total


@pytest.mark.parametrize("seed", range(8))
def test_at_most_one_partition_open(seed):
    plan = generator().generate(seed)
    open_partition = False
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    for _, action in ordered:
        if action.kind == "set_partition":
            assert not open_partition
            open_partition = True
        elif action.kind == "heal_partition":
            assert open_partition
            open_partition = False
    assert not open_partition


@pytest.mark.parametrize("seed", range(8))
def test_link_ramps_restore_base_loss(seed):
    plan = generator().generate(seed)
    current: dict[tuple[str, str], float] = {}
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    for _, action in ordered:
        if action.kind == "set_link_loss":
            device, process, rate = action.args
            current[(device, process)] = rate
    for link, rate in current.items():
        assert rate == domain().base_loss.get(link, 0.0)


def test_zero_rates_yield_empty_plan():
    silent = IntensityProfile(
        name="silent", crash_rate=0.0, partition_rate=0.0,
        device_fail_rate=0.0, link_ramp_rate=0.0,
    )
    plan = FaultScheduleGenerator(domain(), silent, HORIZON).generate(1)
    assert len(plan) == 0


def test_single_process_domain_never_crashes_it():
    solo = FaultDomain(processes=("p0",))
    plan = FaultScheduleGenerator(solo, PROFILES["severe"], HORIZON).generate(3)
    assert not any(a.kind == "crash_process" for a in plan.actions)


def test_invalid_horizon_rejected():
    with pytest.raises(ValueError):
        FaultScheduleGenerator(domain(), PROFILES["mild"], 0.0)


def test_empty_domain_rejected():
    with pytest.raises(ValueError):
        FaultScheduleGenerator(
            FaultDomain(processes=()), PROFILES["mild"], HORIZON
        )


# -- normalize ----------------------------------------------------------------


def test_normalize_keeps_valid_plans_intact():
    plan = generator().generate(5)
    assert normalize(plan.actions) == list(plan.actions)


def test_normalize_drops_orphaned_crash_and_recover():
    plan = (FaultPlan()
            .crash("p0", at=10.0)
            .crash("p0", at=20.0)      # p0 already down: dropped
            .recover("p0", at=30.0)
            .recover("p0", at=40.0))   # p0 already up: dropped
    kept = normalize(plan.actions)
    assert [(a.kind, a.at) for a in kept] == [
        ("crash_process", 10.0),
        ("recover_process", 30.0),
    ]


def test_normalize_preserves_other_kinds():
    plan = (FaultPlan()
            .fail_sensor("s1", at=5.0)
            .recover("p0", at=6.0)     # p0 was never crashed: dropped
            .set_link_loss("s1", "p0", 0.5, at=7.0))
    kept = normalize(plan.actions)
    assert [a.kind for a in kept] == ["fail_sensor", "set_link_loss"]


# -- shrink -------------------------------------------------------------------


def _failing_if_contains(kind: str, name: str):
    def is_failing(plan: FaultPlan) -> bool:
        return any(a.kind == kind and a.args[:1] == (name,)
                   for a in plan.actions)
    return is_failing


def test_shrink_finds_single_culprit():
    plan = generator().generate(2)
    assert len(plan) > 3
    culprit = next(a for a in plan.actions if a.kind == "crash_process")
    shrunk = shrink(plan, _failing_if_contains("crash_process",
                                               culprit.args[0]))
    assert len(shrunk) < len(plan)
    assert any(a.kind == "crash_process" for a in shrunk.actions)
    # the result itself still satisfies the predicate
    assert _failing_if_contains("crash_process", culprit.args[0])(shrunk)


def test_shrink_result_is_normalized():
    plan = generator().generate(4)
    shrunk = shrink(plan, lambda p: True)
    assert normalize(shrunk.actions) == list(shrunk.actions)


def test_shrink_respects_eval_budget():
    calls = 0

    def counting(plan: FaultPlan) -> bool:
        nonlocal calls
        calls += 1
        return False  # nothing ever fails: worst case for ddmin

    shrink(generator().generate(6), counting, max_evals=10)
    assert calls <= 10


def test_shrink_of_singleton_plan_is_identity():
    plan = FaultPlan().fail_sensor("s1", at=100.0)
    shrunk = shrink(plan, lambda p: True)
    assert shrunk.actions == plan.actions
