"""Unit tests for the randomized fault-schedule generator and shrinker."""

import pytest

from repro.sim.chaos import (
    FAULT_WINDOW,
    FaultDomain,
    FaultScheduleGenerator,
    IntensityProfile,
    PROFILES,
    normalize,
    shrink,
)
from repro.sim.faults import FaultPlan

HORIZON = 3600.0


def domain() -> FaultDomain:
    return FaultDomain(
        processes=("p0", "p1", "p2"),
        sensors=("s1", "s2"),
        actuators=("a1",),
        links=(("s1", "p0"), ("s2", "p1")),
    )


def generator(profile: str = "severe") -> FaultScheduleGenerator:
    return FaultScheduleGenerator(domain(), PROFILES[profile], HORIZON)


# -- sampling -----------------------------------------------------------------


def test_same_seed_same_plan():
    a = generator().generate(7)
    b = generator().generate(7)
    assert a.actions == b.actions
    assert len(a) > 0


def test_different_seeds_differ():
    plans = {tuple(generator().generate(s).actions) for s in range(5)}
    assert len(plans) > 1


@pytest.mark.parametrize("seed", range(8))
def test_actions_stay_inside_the_fault_window(seed):
    lo, hi = HORIZON * FAULT_WINDOW[0], HORIZON * FAULT_WINDOW[1]
    plan = generator().generate(seed)
    for action in plan.actions:
        assert lo <= action.at <= hi


@pytest.mark.parametrize("seed", range(8))
def test_crashes_pair_with_recoveries(seed):
    plan = generator().generate(seed)
    down: set[str] = set()
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    for _, action in ordered:
        if action.kind == "crash_process":
            assert action.args[0] not in down
            down.add(action.args[0])
        elif action.kind == "recover_process":
            assert action.args[0] in down
            down.discard(action.args[0])
    assert not down, "every crash must have a matching recovery"


@pytest.mark.parametrize("seed", range(8))
def test_at_least_one_process_stays_up(seed):
    plan = generator().generate(seed)
    total = len(domain().processes)
    down: set[str] = set()
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    for _, action in ordered:
        if action.kind == "crash_process":
            down.add(action.args[0])
        elif action.kind == "recover_process":
            down.discard(action.args[0])
        assert len(down) < total


@pytest.mark.parametrize("seed", range(8))
def test_at_most_one_partition_open(seed):
    plan = generator().generate(seed)
    open_partition = False
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    for _, action in ordered:
        if action.kind == "set_partition":
            assert not open_partition
            open_partition = True
        elif action.kind == "heal_partition":
            assert open_partition
            open_partition = False
    assert not open_partition


@pytest.mark.parametrize("seed", range(8))
def test_link_ramps_restore_base_loss(seed):
    plan = generator().generate(seed)
    current: dict[tuple[str, str], float] = {}
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    for _, action in ordered:
        if action.kind == "set_link_loss":
            device, process, rate = action.args
            current[(device, process)] = rate
    for link, rate in current.items():
        assert rate == domain().base_loss.get(link, 0.0)


def test_zero_rates_yield_empty_plan():
    silent = IntensityProfile(
        name="silent", crash_rate=0.0, partition_rate=0.0,
        device_fail_rate=0.0, link_ramp_rate=0.0,
    )
    plan = FaultScheduleGenerator(domain(), silent, HORIZON).generate(1)
    assert len(plan) == 0


def test_single_process_domain_never_crashes_it():
    solo = FaultDomain(processes=("p0",))
    plan = FaultScheduleGenerator(solo, PROFILES["severe"], HORIZON).generate(3)
    assert not any(a.kind == "crash_process" for a in plan.actions)


def test_invalid_horizon_rejected():
    with pytest.raises(ValueError):
        FaultScheduleGenerator(domain(), PROFILES["mild"], 0.0)


def test_empty_domain_rejected():
    with pytest.raises(ValueError):
        FaultScheduleGenerator(
            FaultDomain(processes=()), PROFILES["mild"], HORIZON
        )


# -- soft device-fault episodes ----------------------------------------------


_DEVICE_PAIRS = {
    "stick_sensor": "unstick_sensor",
    "drift_sensor": "stop_drift",
    "flap_link": "stop_flap",
    "ghost_events": "stop_ghost",
    "brownout": "replace_battery",
}


def device_domain() -> FaultDomain:
    return FaultDomain(
        processes=("p0", "p1"),
        binary_sensors=("m1", "d1"),
        numeric_sensors=("t1",),
        battery_sensors=("m1", "t1"),
        correlated=(("m1", "m2"),),
    )


def device_generator() -> FaultScheduleGenerator:
    return FaultScheduleGenerator(device_domain(), PROFILES["device"], HORIZON)


def test_device_profile_emits_soft_faults():
    plan = device_generator().generate(1)
    kinds = {a.kind for a in plan.actions}
    assert kinds & set(_DEVICE_PAIRS), "expected at least one soft fault"


@pytest.mark.parametrize("seed", range(8))
def test_device_episodes_are_paired_and_non_overlapping(seed):
    plan = device_generator().generate(seed)
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    active: dict[str, str] = {}  # device -> start kind
    for _, action in ordered:
        if action.kind in _DEVICE_PAIRS:
            device = action.args[0]
            assert device not in active, \
                f"{device} got {action.kind} while {active[device]} is open"
            active[device] = action.kind
        elif action.kind in _DEVICE_PAIRS.values():
            device = action.args[0]
            starts = [k for k, v in _DEVICE_PAIRS.items() if v == action.kind]
            assert active.get(device) == starts[0]
            del active[device]
    assert not active, "every soft fault must be cleared inside the window"


@pytest.mark.parametrize("seed", range(8))
def test_device_episodes_respect_correlated_groups(seed):
    plan = device_generator().generate(seed)
    ordered = sorted(enumerate(plan.actions),
                     key=lambda pair: (pair[1].at, pair[0]))
    group = {"m1", "m2"}
    open_in_group = 0
    for _, action in ordered:
        if not action.args or action.args[0] not in group:
            continue
        if action.kind in _DEVICE_PAIRS:
            open_in_group += 1
            assert open_in_group <= 1
        elif action.kind in _DEVICE_PAIRS.values():
            open_in_group -= 1


@pytest.mark.parametrize("seed", range(8))
def test_device_fault_parameters_are_valid(seed):
    plan = device_generator().generate(seed)
    for action in plan.actions:
        if action.kind == "stick_sensor":
            device, value = action.args
            if device in ("m1", "d1"):
                assert isinstance(value, bool)
            else:
                assert 18.0 <= value <= 28.0
        elif action.kind == "drift_sensor":
            assert action.args[0] == "t1"  # numeric only
            assert 0.0 < abs(action.args[1]) <= PROFILES["device"].max_drift_per_s
        elif action.kind == "flap_link":
            _, period, duty = action.args
            assert period > 0 and 0.0 < duty < 1.0
        elif action.kind == "ghost_events":
            assert action.args[0] in ("m1", "d1")  # binary push only
            assert action.args[1] > 0
        elif action.kind == "brownout":
            assert action.args[0] in ("m1", "t1")
            assert 0.0 <= action.args[1] <= 0.15


def test_legacy_profiles_are_digest_stable_with_device_fields():
    """Profiles with zero device-fault rates must generate plans that are
    bit-identical whether or not the domain declares soft-fault targets
    (adding the feature cannot shift existing campaigns)."""
    bare = domain()
    extended = FaultDomain(
        processes=bare.processes, sensors=bare.sensors,
        actuators=bare.actuators, links=bare.links,
        binary_sensors=("s1",), numeric_sensors=("s2",),
        battery_sensors=("s1",), correlated=(("s1", "s2"),),
    )
    for profile in ("mild", "severe"):
        for seed in range(6):
            a = FaultScheduleGenerator(bare, PROFILES[profile], HORIZON)
            b = FaultScheduleGenerator(extended, PROFILES[profile], HORIZON)
            assert a.generate(seed).actions == b.generate(seed).actions


# -- normalize ----------------------------------------------------------------


def test_normalize_keeps_valid_plans_intact():
    plan = generator().generate(5)
    assert normalize(plan.actions) == list(plan.actions)


def test_normalize_drops_orphaned_crash_and_recover():
    plan = (FaultPlan()
            .crash("p0", at=10.0)
            .crash("p0", at=20.0)      # p0 already down: dropped
            .recover("p0", at=30.0)
            .recover("p0", at=40.0))   # p0 already up: dropped
    kept = normalize(plan.actions)
    assert [(a.kind, a.at) for a in kept] == [
        ("crash_process", 10.0),
        ("recover_process", 30.0),
    ]


def test_normalize_preserves_other_kinds():
    plan = (FaultPlan()
            .fail_sensor("s1", at=5.0)
            .recover("p0", at=6.0)     # p0 was never crashed: dropped
            .set_link_loss("s1", "p0", 0.5, at=7.0))
    kept = normalize(plan.actions)
    assert [a.kind for a in kept] == ["fail_sensor", "set_link_loss"]


def test_normalize_keeps_device_plans_intact():
    plan = device_generator().generate(3)
    assert normalize(plan.actions) == list(plan.actions)


def test_normalize_drops_orphaned_device_actions():
    plan = (FaultPlan()
            .stick_sensor("m1", True, at=10.0)
            .stick_sensor("m1", False, at=15.0)   # already stuck: dropped
            .unstick_sensor("m1", at=20.0)
            .unstick_sensor("m1", at=25.0)        # not stuck: dropped
            .stop_flap("d1", at=30.0)             # never flapping: dropped
            .brownout("t1", 0.1, at=35.0)
            .brownout("t1", 0.05, at=40.0)        # battery already weak: dropped
            .replace_battery("t1", at=45.0))
    kept = normalize(plan.actions)
    assert [(a.kind, a.at) for a in kept] == [
        ("stick_sensor", 10.0),
        ("unstick_sensor", 20.0),
        ("brownout", 35.0),
        ("replace_battery", 45.0),
    ]


def test_shrink_handles_device_action_subsets():
    plan = device_generator().generate(2)
    soft = [a for a in plan.actions if a.kind in _DEVICE_PAIRS]
    assert soft, "need at least one soft fault for this seed"
    culprit = soft[0]
    shrunk = shrink(plan, _failing_if_contains(culprit.kind, culprit.args[0]))
    assert len(shrunk) <= len(plan)
    assert any(a.kind == culprit.kind for a in shrunk.actions)
    assert normalize(shrunk.actions) == list(shrunk.actions)


# -- shrink -------------------------------------------------------------------


def _failing_if_contains(kind: str, name: str):
    def is_failing(plan: FaultPlan) -> bool:
        return any(a.kind == kind and a.args[:1] == (name,)
                   for a in plan.actions)
    return is_failing


def test_shrink_finds_single_culprit():
    plan = generator().generate(2)
    assert len(plan) > 3
    culprit = next(a for a in plan.actions if a.kind == "crash_process")
    shrunk = shrink(plan, _failing_if_contains("crash_process",
                                               culprit.args[0]))
    assert len(shrunk) < len(plan)
    assert any(a.kind == "crash_process" for a in shrunk.actions)
    # the result itself still satisfies the predicate
    assert _failing_if_contains("crash_process", culprit.args[0])(shrunk)


def test_shrink_result_is_normalized():
    plan = generator().generate(4)
    shrunk = shrink(plan, lambda p: True)
    assert normalize(shrunk.actions) == list(shrunk.actions)


def test_shrink_respects_eval_budget():
    calls = 0

    def counting(plan: FaultPlan) -> bool:
        nonlocal calls
        calls += 1
        return False  # nothing ever fails: worst case for ddmin

    shrink(generator().generate(6), counting, max_evals=10)
    assert calls <= 10


def test_shrink_of_singleton_plan_is_identity():
    plan = FaultPlan().fail_sensor("s1", at=100.0)
    shrunk = shrink(plan, lambda p: True)
    assert shrunk.actions == plan.actions
