"""Unit tests for the logic-node runtime (operator machinery in isolation).

These drive :class:`repro.core.execution.ExecutionService` directly on a
:class:`tests.helpers.FakeEnv`, with no network or devices: windows fire,
combiners align, derived events flow downstream, watermarks gossip.
"""

from repro.core.delivery import EpochGap, GAP, GAPLESS
from repro.core.eventlog import EventStore
from repro.core.events import Event
from repro.core.execution import ExecutionService
from repro.core.graph import App
from repro.core.operators import Operator
from repro.core.plan import DeploymentPlan
from repro.core.windows import CountWindow, TimeWindow
from repro.membership.heartbeat import HeartbeatService
from repro.net.latency import ProcessingModel
from tests.helpers import FakeEnv


class Rig:
    def __init__(self, app: App, name: str = "p0", processes=("p0",)):
        self.env = FakeEnv(name)
        for other in processes:
            if other != name:
                self.env.link(FakeEnv(other, self.env.scheduler))
        self.heartbeat = HeartbeatService(self.env, interval=0.5, timeout=2.0)
        self.store = EventStore(name)
        plan = DeploymentPlan(
            processes=list(processes),
            sensor_hosts={s: list(processes) for s in app.sensors},
            actuator_hosts={a: list(processes) for a in app.actuators},
            apps=[app],
        )
        self.commands = []
        self.service = ExecutionService(self.env, self.heartbeat, plan,
                                        self.store, ProcessingModel())

        class _FakeDelivery:
            def send_command(inner, command, app_name, guarantee):
                self.commands.append(command)

        self.service.bind_delivery(_FakeDelivery())
        self.heartbeat.start()
        self.service.start()

    def feed(self, sensor: str, seq: int, value, at: float | None = None) -> None:
        now = self.env.now() if at is None else at
        event = Event(sensor_id=sensor, seq=seq, emitted_at=now, value=value,
                      size_bytes=4)
        self.store.add(event)
        self.service.on_event(sensor, event)

    def run(self, duration: float) -> None:
        self.env.scheduler.run_until(self.env.now() + duration)


def test_count_window_triggers_operator():
    seen = []
    op = Operator("L", on_window=lambda ctx, c: seen.append(c.all_values()))
    op.add_sensor("s", GAP, CountWindow(2))
    rig = Rig(App("a", op))
    rig.feed("s", 1, "x")
    rig.feed("s", 2, "y")
    rig.feed("s", 3, "z")
    assert seen == [["x", "y"]]


def test_periodic_time_window_fires_while_active():
    seen = []
    op = Operator("L", on_window=lambda ctx, c: seen.append(len(c.all_events())))
    op.add_sensor("s", GAP, TimeWindow(1.0))
    rig = Rig(App("a", op))
    rig.feed("s", 1, "x")
    rig.run(3.2)
    assert len(seen) == 3           # fired at t=1, 2, 3
    assert seen[0] == 1 and seen[1] == 0


def test_duplicate_events_processed_once():
    seen = []
    op = Operator("L", on_window=lambda ctx, c: seen.append(c.all_values()))
    op.add_sensor("s", GAPLESS, CountWindow(1))
    rig = Rig(App("a", op))
    rig.feed("s", 1, "x")
    rig.feed("s", 1, "x")
    assert seen == [["x"]]


def test_derived_events_flow_to_downstream_operator():
    downstream_values = []
    source = Operator("src", on_window=lambda ctx, c: ctx.emit(
        sum(c.all_values())))
    source.add_sensor("s", GAP, CountWindow(2))
    sink = Operator("sink", on_window=lambda ctx, c: downstream_values.extend(
        c.all_values()))
    sink.add_upstream_operator(source, CountWindow(1))
    rig = Rig(App("a", [source, sink]))
    rig.feed("s", 1, 10)
    rig.feed("s", 2, 32)
    assert downstream_values == [42]


def test_actuation_goes_through_delivery():
    op = Operator("L", on_window=lambda ctx, c: ctx.actuate("light", "on", 1))
    op.add_sensor("s", GAP, CountWindow(1))
    op.add_actuator("light", GAP)
    rig = Rig(App("a", op))
    rig.feed("s", 1, "x")
    assert len(rig.commands) == 1
    assert rig.commands[0].actuator_id == "light"
    assert rig.commands[0].issued_by == "a@p0"


def test_actuating_unbound_actuator_is_an_operator_error():
    op = Operator("L", on_window=lambda ctx, c: ctx.actuate("ghost", "on"))
    op.add_sensor("s", GAP, CountWindow(1))
    rig = Rig(App("a", op))
    rig.feed("s", 1, "x")
    assert rig.env.trace_log.count("operator_error") == 1
    assert rig.commands == []


def test_operator_exception_is_contained():
    def boom(ctx, combined):
        raise RuntimeError("kaboom")

    bad = Operator("bad", on_window=boom)
    bad.add_sensor("s", GAP, CountWindow(1))
    good_seen = []
    good = Operator("good", on_window=lambda ctx, c: good_seen.append(1))
    good.add_sensor("s", GAP, CountWindow(1))
    rig = Rig(App("a", [bad, good]))
    rig.feed("s", 1, "x")
    assert rig.env.trace_log.count("operator_error") == 1
    assert good_seen == [1]


def test_staleness_bound_drops_old_events():
    seen = []
    op = Operator("L", on_window=lambda ctx, c: seen.append(c.all_values()))
    op.add_sensor("s", GAP, CountWindow(1), staleness_s=0.5)
    rig = Rig(App("a", op))
    rig.run(10.0)
    rig.feed("s", 1, "stale", at=1.0)   # emitted 9 s ago
    rig.feed("s", 2, "fresh", at=9.9)
    assert seen == [["fresh"]]
    assert rig.env.trace_log.count("stale_dropped") == 1


def test_epoch_gap_routed_to_consuming_operator():
    gaps = []
    op = Operator("L", on_window=lambda ctx, c: None,
                  on_epoch_gap=lambda ctx, g: gaps.append(g.epoch))
    op.add_sensor("s", GAPLESS, CountWindow(1))
    rig = Rig(App("a", op))
    rig.service.on_epoch_gap("s", EpochGap(sensor="s", epoch=7, detected_at=1.0))
    assert gaps == [7]


def test_shadow_ignores_events_until_promoted():
    seen = []
    op = Operator("L", on_window=lambda ctx, c: seen.append(c.all_values()))
    op.add_sensor("s", GAPLESS, CountWindow(1))
    app = App("a", op)
    # Two processes: p1 (higher name) wins the tie and p0 stays shadow.
    rig = Rig(app, name="p0", processes=("p0", "p1"))
    assert not rig.service.runtimes["a"].active
    rig.feed("s", 1, "early")
    assert seen == []
    # p1 goes silent; p0's detector eventually promotes and replays from
    # the journal (the event was stored on feed).
    rig.run(5.0)
    assert rig.service.runtimes["a"].active
    assert seen == [["early"]]


def test_watermark_gossip_limits_replay():
    seen = []
    op = Operator("L", on_window=lambda ctx, c: seen.append(c.all_values()))
    op.add_sensor("s", GAPLESS, CountWindow(1))
    app = App("a", op)
    rig = Rig(app, name="p0", processes=("p0", "p1"))
    runtime = rig.service.runtimes["a"]
    # The remote active on p1 advertises the seq ranges it processed.
    rig.service._on_watermarks("p1", {"a": {"s": [(1, 5)]}})
    for seq in range(1, 9):
        rig.feed("s", seq, seq)
    rig.run(5.0)  # p1 never heartbeats -> p0 promotes
    assert runtime.active
    assert seen == [[6], [7], [8]]  # only events outside the gossiped ranges


def test_watermark_gossip_replays_holes_below_the_maximum():
    """Ranges gossip replays events the old active skipped (a hole below
    its high-water mark), which a scalar watermark would lose forever."""
    seen = []
    op = Operator("L", on_window=lambda ctx, c: seen.append(c.all_values()))
    op.add_sensor("s", GAPLESS, CountWindow(1))
    app = App("a", op)
    rig = Rig(app, name="p0", processes=("p0", "p1"))
    runtime = rig.service.runtimes["a"]
    # p1 processed 1-3 and 5-6 but never saw 4 (partition hole).
    rig.service._on_watermarks("p1", {"a": {"s": [(1, 3), (5, 6)]}})
    for seq in range(1, 7):
        rig.feed("s", seq, seq)
    rig.run(5.0)  # p1 never heartbeats -> p0 promotes
    assert runtime.active
    assert seen == [[4]]  # the hole is replayed, the rest is not
