"""Unit tests for evaluation metrics (pure functions over traces)."""

import math

from repro.eval import metrics
from repro.sim.tracing import Trace


def make_trace_with_deliveries():
    trace = Trace()
    for seq, (at, delay) in enumerate([(1.0, 0.002), (2.0, 0.004), (2.5, 0.006)], 1):
        trace.record(at, "logic_delivery", app="a", sensor="s", seq=seq,
                     emitted_at=at - delay, delay=delay)
    return trace


def test_mean_and_percentile():
    assert metrics.mean([1.0, 2.0, 3.0]) == 2.0
    assert math.isnan(metrics.mean([]))
    assert metrics.percentile([1, 2, 3, 4, 5], 0.5) == 3
    assert math.isnan(metrics.percentile([], 0.5))


def test_delivery_delays_and_mean_delay():
    trace = make_trace_with_deliveries()
    assert metrics.delivery_delays(trace) == [0.002, 0.004, 0.006]
    assert metrics.mean_delay_ms(trace) == 4.0
    assert metrics.delivery_delays(trace, app="other") == []


def test_event_bytes_and_messages():
    trace = Trace()
    trace.record(0.0, "net_send", src="a", dst="b", kind="gapless_fwd", bytes=100)
    trace.record(0.0, "net_send", src="a", dst="b", kind="keepalive", bytes=50)
    trace.record(0.0, "net_send", src="b", dst="c", kind="gap_fwd", bytes=70)
    assert metrics.event_bytes_sent(trace) == 170  # keepalive excluded
    assert metrics.event_messages_sent(trace) == 2
    assert metrics.bytes_per_event(trace, 2) == 85.0
    assert math.isnan(metrics.bytes_per_event(trace, 0))


def test_delivered_fraction_counts_distinct():
    trace = Trace()
    for seq in (1, 2, 2, 3):  # seq 2 replayed after a failover
        trace.record(1.0, "logic_delivery", app="a", sensor="s", seq=seq,
                     emitted_at=0.9, delay=0.1)
    assert metrics.delivered_fraction(trace, 4) == 0.75
    assert math.isnan(metrics.delivered_fraction(trace, 0))


def test_deliveries_per_bucket():
    trace = make_trace_with_deliveries()
    series = metrics.deliveries_per_bucket(trace)
    assert series == [(0.0, 0), (1.0, 1), (2.0, 2)]
    assert metrics.deliveries_per_bucket(Trace()) == []


def test_poll_metrics():
    trace = Trace()
    for _ in range(6):
        trace.record(0.0, "poll_request", sensor="t1", process="p0")
    trace.record(0.0, "poll_request", sensor="t2", process="p0")
    assert metrics.poll_requests(trace) == 7
    assert metrics.poll_requests(trace, "t1") == 6
    assert metrics.normalized_poll_overhead(trace, "t1", epoch_s=2.0,
                                            duration_s=10.0) == 1.2


def test_reception_matrix():
    trace = Trace()
    trace.record(0.0, "radio_delivered", sensor="s1", process="hub", seq=1)
    trace.record(0.0, "radio_delivered", sensor="s1", process="hub", seq=2)
    trace.record(0.0, "radio_delivered", sensor="s1", process="tv", seq=1)
    matrix = metrics.reception_matrix(trace)
    assert matrix == {"s1": {"hub": 2, "tv": 1}}


def test_streaming_reception_counter():
    trace = Trace(keep_kinds=set())
    counter = metrics.ReceptionCounter(trace)
    trace.record(0.0, "sensor_emit", sensor="s1", seq=1)
    trace.record(0.0, "radio_delivered", sensor="s1", process="hub", seq=1)
    trace.record(0.0, "radio_delivered", sensor="s1", process="hub", seq=2)
    assert counter.emitted["s1"] == 1
    assert counter.matrix() == {"s1": {"hub": 2}}
    assert len(trace) == 0  # nothing stored, everything streamed
