"""Unit tests for the app-level repair layer (core.repair)."""

import heapq
import itertools

import pytest

from repro.core.events import Event
from repro.core.repair import RepairPolicy, RepairSession


class FakeHandle:
    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class FakeEnv:
    """Minimal RuntimeEnv stand-in: clock, timers, trace sink."""

    def __init__(self):
        self._now = 0.0
        self._timers = []
        self._counter = itertools.count()
        self.traces = []

    def now(self):
        return self._now

    def schedule(self, delay, fn, *args):
        handle = FakeHandle()
        heapq.heappush(
            self._timers, (self._now + delay, next(self._counter), fn, args, handle)
        )
        return handle

    def trace(self, kind, **fields):
        self.traces.append((kind, fields))

    def advance(self, to):
        while self._timers and self._timers[0][0] <= to:
            at, _, fn, args, handle = heapq.heappop(self._timers)
            self._now = at
            if not handle.cancelled:
                fn(*args)
        self._now = to

    def decisions(self, decision=None):
        picked = [f for k, f in self.traces if k == "repair"]
        if decision is None:
            return picked
        return [f for f in picked if f["decision"] == decision]


def make_session(policy, env=None):
    env = env or FakeEnv()
    delivered = []
    session = RepairSession(
        policy, "app", env, lambda sensor, event: delivered.append((sensor, event))
    )
    return session, env, delivered


_SEQ = itertools.count(1)


def ev(sensor, value, at=0.0):
    return Event(sensor_id=sensor, seq=next(_SEQ), emitted_at=at,
                 value=value, size_bytes=8)


# -- policy validation ------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        RepairPolicy(stuck_after=1)
    with pytest.raises(ValueError):
        RepairPolicy(retry_timeout_s=0.0)
    with pytest.raises(ValueError):
        RepairPolicy(quarantine_after=0)
    with pytest.raises(ValueError):
        RepairPolicy(echo_timeout_s=-1.0)
    with pytest.raises(ValueError):
        RepairPolicy(echo_lead_s=-0.1)
    with pytest.raises(ValueError):
        RepairPolicy(correlation_max_age_s=0.0)
    with pytest.raises(ValueError):
        RepairPolicy(valid_range={"t1": (5.0, 5.0)})


# -- stuck detection --------------------------------------------------------------------


STUCK = RepairPolicy(correlations={"m1": ("m2",)}, stuck_after=3)


def test_healthy_readings_pass_through_unchanged():
    session, env, _ = make_session(STUCK)
    event = ev("m1", True)
    assert session.admit("m1", event) is event
    assert env.decisions() == []


def test_benign_constancy_without_disagreeing_backup_passes():
    session, env, _ = make_session(STUCK)
    for t in range(10):
        env.advance(float(t))
        assert session.admit("m2", ev("m2", True, float(t))) is not None
        assert session.admit("m1", ev("m1", True, float(t))) is not None
    assert env.decisions() == []


def test_stuck_with_fresh_disagreeing_backup_substitutes():
    session, env, _ = make_session(STUCK)
    for t in range(4):
        env.advance(float(t))
        session.admit("m2", ev("m2", False, float(t)))
        repaired = session.admit("m1", ev("m1", True, float(t)))
        if t < 2:
            assert repaired.value is True  # run not long enough yet
        else:
            assert repaired.value is False  # substituted from m2
    assert len(env.decisions("substitute")) == 2


def test_backup_is_never_stuck_suspect():
    session, env, _ = make_session(STUCK)
    for t in range(6):
        env.advance(float(t))
        # m1 varies (never a run), m2 repeats forever and disagrees with
        # m1 half the time — but m2 has no correlations entry, so its
        # constancy is never judged.
        session.admit("m1", ev("m1", t % 2 == 0, float(t)))
        repaired = session.admit("m2", ev("m2", True, float(t)))
        assert repaired.value is True
    assert env.decisions() == []


def test_stale_backup_does_not_trigger_suspicion():
    session, env, _ = make_session(
        RepairPolicy(correlations={"m1": ("m2",)}, stuck_after=3,
                     correlation_max_age_s=10.0)
    )
    session.admit("m2", ev("m2", False, 0.0))
    # m2's only reading is older than correlation_max_age_s by the time
    # m1's run gets long enough to matter: no suspicion.
    for t in range(12, 60, 3):
        env.advance(float(t))
        assert session.admit("m1", ev("m1", True, float(t))).value is True
    assert env.decisions() == []


def test_suspect_without_repair_options_drops():
    session, env, _ = make_session(
        RepairPolicy(correlations={"m1": ("m2",)}, stuck_after=2,
                     substitute=False)
    )
    session.admit("m2", ev("m2", False))
    session.admit("m1", ev("m1", True))
    assert session.admit("m1", ev("m1", True)) is None
    assert len(env.decisions("drop")) == 1


def test_hold_last_known_good():
    # Hold pays off for range faults: the out-of-range reading never
    # became last-good, so the app keeps seeing the last sane value.
    session, env, _ = make_session(
        RepairPolicy(valid_range={"t1": (10.0, 35.0)}, substitute=False,
                     hold_last_known_good=True)
    )
    assert session.admit("t1", ev("t1", 21.0)).value == 21.0
    held = session.admit("t1", ev("t1", 99.0))
    assert held.value == 21.0
    assert len(env.decisions("hold")) == 1


# -- quarantine -------------------------------------------------------------------------


def test_quarantine_alerts_and_requalifies():
    session, env, _ = make_session(
        RepairPolicy(correlations={"m1": ("m2",)}, stuck_after=2,
                     quarantine_after=3)
    )
    for t in range(5):
        env.advance(float(t))
        session.admit("m2", ev("m2", False, float(t)))
        session.admit("m1", ev("m1", True, float(t)))
    assert session.quarantined == {"m1"}
    alerts = [f for k, f in env.traces if k == "alert"]
    assert len(alerts) == 1 and alerts[0]["sensor"] == "m1"
    # The sensor recovers and agrees with its backup again.
    env.advance(5.0)
    session.admit("m2", ev("m2", False, 5.0))
    session.admit("m1", ev("m1", False, 5.0))
    assert session.quarantined == frozenset()
    assert len(env.decisions("requalified")) == 1


def test_quarantined_backup_is_not_a_substitution_source():
    session, env, _ = make_session(
        RepairPolicy(correlations={"m1": ("m2",), "m2": ("m1",)},
                     stuck_after=2, quarantine_after=1, substitute=False)
    )
    # Quarantine m2 (m1 disagrees while m2 repeats).
    session.admit("m1", ev("m1", False))
    session.admit("m2", ev("m2", True))
    session.admit("m2", ev("m2", True))
    assert "m2" in session.quarantined
    # m1's readings must not be judged against the quarantined m2.
    for t in range(4):
        env.advance(float(t + 1))
        assert session.admit("m1", ev("m1", False)).value is False


# -- range checks and retry -------------------------------------------------------------


RANGE = RepairPolicy(valid_range={"t1": (10.0, 35.0)}, retry_timeout_s=5.0,
                     hold_last_known_good=True)


def test_in_range_passes_out_of_range_buffers_then_holds():
    session, env, delivered = make_session(RANGE)
    assert session.admit("t1", ev("t1", 21.0)).value == 21.0
    assert session.admit("t1", ev("t1", 99.0, 0.0)) is None  # buffered
    assert env.decisions("retry_wait")
    env.advance(6.0)  # retry expires: escalate to hold
    assert len(delivered) == 1
    assert delivered[0][1].value == 21.0
    assert env.decisions("hold")


def test_retry_superseded_by_good_reading():
    session, env, delivered = make_session(RANGE)
    session.admit("t1", ev("t1", 21.0))
    assert session.admit("t1", ev("t1", 99.0, 0.0)) is None
    env.advance(2.0)
    assert session.admit("t1", ev("t1", 22.0, 2.0)).value == 22.0
    env.advance(10.0)  # expired timer must not fire
    assert delivered == []
    assert env.decisions("retry_superseded")


def test_booleans_are_exempt_from_range_checks():
    session, env, _ = make_session(RepairPolicy(valid_range={"t1": (10.0, 35.0)}))
    assert session.admit("t1", ev("t1", True)).value is True


def test_close_cancels_pending_retries():
    session, env, delivered = make_session(RANGE)
    session.admit("t1", ev("t1", 21.0))
    session.admit("t1", ev("t1", 99.0))
    session.close()
    env.advance(10.0)
    assert delivered == []


# -- echo synthesis ---------------------------------------------------------------------


ECHO = RepairPolicy(correlations={"m1": ("m2",)}, stuck_after=3,
                    echo_timeout_s=5.0, echo_lead_s=2.0)


def test_silent_primary_gets_backup_echo():
    session, env, delivered = make_session(ECHO)
    session.admit("m1", ev("m1", False, 0.0))
    env.advance(100.0)  # m1 goes silent
    session.admit("m2", ev("m2", True, 100.0))
    env.advance(106.0)
    assert len(delivered) == 1
    sensor, event = delivered[0]
    assert sensor == "m1" and event.value is True
    assert event.seq < 0  # synthesized seqs never collide with real ones
    assert env.decisions("synthesize")


def test_fresh_primary_suppresses_echo():
    session, env, delivered = make_session(ECHO)
    session.admit("m1", ev("m1", True, 0.0))
    env.advance(1.0)
    session.admit("m2", ev("m2", True, 1.0))  # m1 spoke 1s ago: fresh
    env.advance(10.0)
    assert delivered == []


def test_primary_speaking_just_before_burst_does_not_block_echo():
    session, env, delivered = make_session(ECHO)
    env.advance(97.0)
    session.admit("m1", ev("m1", False, 97.0))  # last word before silence
    env.advance(100.0)
    session.admit("m2", ev("m2", True, 100.0))  # 3s later: beyond the lead
    env.advance(106.0)
    assert len(delivered) == 1


def test_one_echo_per_backup_reading():
    session, env, delivered = make_session(ECHO)
    env.advance(100.0)
    session.admit("m2", ev("m2", True, 100.0))
    session.admit("m2", ev("m2", True, 100.5))
    env.advance(110.0)
    # The first check synthesizes and marks m1 heard; the second skips.
    assert len(delivered) == 1


def test_echoes_require_opt_in():
    session, env, delivered = make_session(STUCK)  # no echo_timeout_s
    env.advance(100.0)
    session.admit("m2", ev("m2", True, 100.0))
    env.advance(200.0)
    assert delivered == []
