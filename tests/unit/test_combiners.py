"""Unit tests for combiners, especially FTCombiner (Section 6.1)."""

import pytest

from repro.core.combiners import (
    AllStreamsCombiner,
    CombinerViolation,
    FTCombiner,
    PassThroughCombiner,
)
from repro.core.events import Event
from repro.core.windows import TriggeredWindow


def tw(stream: str, at: float = 1.0, count: int = 1) -> TriggeredWindow:
    events = tuple(
        Event(sensor_id=stream, seq=i + 1, emitted_at=at, value=i, size_bytes=4)
        for i in range(count)
    )
    return TriggeredWindow(stream=stream, events=events, fired_at=at)


def test_passthrough_delivers_immediately():
    combiner = PassThroughCombiner()
    combiner.bind("op", frozenset({"a", "b"}))
    combined = combiner.offer(tw("a"))
    assert combined is not None
    assert combined.streams == ["a"]


def test_all_streams_waits_for_everyone():
    combiner = AllStreamsCombiner()
    combiner.bind("op", frozenset({"a", "b"}))
    assert combiner.offer(tw("a")) is None
    combined = combiner.offer(tw("b"))
    assert combined is not None
    assert combined.streams == ["a", "b"]
    # Next round starts empty.
    assert combiner.offer(tw("a")) is None


def test_ftcombiner_immediate_when_all_present():
    combiner = FTCombiner(1)
    combiner.bind("op", frozenset({"a", "b"}))
    assert combiner.offer(tw("a")) is None
    combined = combiner.offer(tw("b"))
    assert combined is not None
    assert combined.missing == frozenset()


def test_ftcombiner_flush_with_tolerated_missing():
    combiner = FTCombiner(1, grace_s=0.5)
    combiner.bind("op", frozenset({"a", "b"}))
    assert combiner.offer(tw("a")) is None
    combined = combiner.flush(now=2.0)
    assert combined is not None
    assert combined.missing == frozenset({"b"})
    assert combined.fired_at == 2.0


def test_ftcombiner_violation_when_too_many_missing():
    violations = []
    combiner = FTCombiner(0, grace_s=0.5, on_violation=violations.append)
    combiner.bind("op", frozenset({"a", "b"}))
    combiner.offer(tw("a"))
    assert combiner.flush(now=1.0) is None
    assert len(violations) == 1
    assert violations[0].missing == frozenset({"b"})
    assert combiner.violations


def test_ftcombiner_flush_without_round_is_noop():
    combiner = FTCombiner(1)
    combiner.bind("op", frozenset({"a"}))
    assert combiner.flush(now=1.0) is None


def test_ftcombiner_validation():
    with pytest.raises(ValueError):
        FTCombiner(-1)
    with pytest.raises(ValueError):
        FTCombiner(1, grace_s=0.0)


def test_clone_resets_round_state():
    combiner = FTCombiner(1, grace_s=2.0)
    combiner.bind("op", frozenset({"a", "b"}))
    combiner.offer(tw("a"))
    clone = combiner.clone()
    clone.bind("op", frozenset({"a", "b"}))
    # The clone has no open round: flush is a no-op.
    assert clone.flush(now=9.0) is None
    assert clone.tolerated_failures == 1
    assert clone.grace_s == 2.0


def test_clone_for_each_builtin():
    for combiner in (PassThroughCombiner(), AllStreamsCombiner(), FTCombiner(2)):
        clone = combiner.clone()
        assert type(clone) is type(combiner)
        assert clone is not combiner


def test_combined_windows_accessors():
    combiner = AllStreamsCombiner()
    combiner.bind("op", frozenset({"a", "b"}))
    combiner.offer(tw("a", at=1.0, count=2))
    combined = combiner.offer(tw("b", at=2.0))
    assert "a" in combined
    assert len(combined.all_events()) == 3
    values = combined.all_values()
    assert len(values) == 3
    assert combined["b"].stream == "b"


def test_violation_message_contents():
    violation = CombinerViolation("op", frozenset({"x"}), 0)
    assert "op" in str(violation)
    assert "x" in str(violation)
