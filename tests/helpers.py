"""Shared test utilities.

:class:`FakeEnv` is a minimal in-memory :class:`repro.core.env.RuntimeEnv`
for sans-IO protocol tests: several FakeEnvs share one simulator scheduler
and a tiny loopback "network" with a constant delay and controllable drops.
This is how heartbeat/election/protocol units are exercised without the
full Home machinery.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.env import CancelHandle, RuntimeEnv
from repro.net.message import Message
from repro.sim.random import RandomSource
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace


class FakeEnv(RuntimeEnv):
    """An in-memory RuntimeEnv; wire several together via ``link()``."""

    def __init__(
        self,
        name: str,
        scheduler: Scheduler | None = None,
        *,
        delay: float = 0.001,
        seed: int = 7,
    ) -> None:
        self.name = name
        self.scheduler = scheduler or Scheduler()
        self.delay = delay
        self.sent: list[Message] = []
        self.trace_log = Trace()
        self.alive = True
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._network: dict[str, "FakeEnv"] = {name: self}
        self._rng = RandomSource(seed).child(name)
        self.dropped_links: set[tuple[str, str]] = set()

    # -- wiring ------------------------------------------------------------------

    def link(self, *others: "FakeEnv") -> "FakeEnv":
        """Connect envs into one loopback network (shared scheduler assumed)."""
        for other in others:
            self._network[other.name] = other
            other._network.update(self._network)
            for peer in self._network.values():
                peer._network.update(self._network)
        return self

    def drop_between(self, a: str, b: str) -> None:
        """Silently drop messages in both directions between a and b."""
        self.dropped_links.add((a, b))
        self.dropped_links.add((b, a))
        for env in self._network.values():
            env.dropped_links |= self.dropped_links

    # -- RuntimeEnv ---------------------------------------------------------------------

    def now(self) -> float:
        return self.scheduler.now

    def send(self, dst: str, kind: str, **payload: Any) -> None:
        if not self.alive:
            return
        message = Message(kind=kind, src=self.name, dst=dst, payload=payload)
        self.sent.append(message)
        if (self.name, dst) in self.dropped_links:
            return
        target = self._network.get(dst)
        if target is None:
            return
        self.scheduler.call_later(self.delay, target.deliver, message)

    def deliver(self, message: Message) -> None:
        if not self.alive:
            return
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(message)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> CancelHandle:
        def guarded() -> None:
            if self.alive:
                fn(*args)

        return self.scheduler.call_later(delay, guarded)

    def register_handler(self, kind: str, fn: Callable[[Message], None]) -> None:
        self._handlers[kind] = fn

    def rng(self, stream: str) -> RandomSource:
        return self._rng.child(stream)

    def trace(self, kind: str, /, **fields: Any) -> None:
        self.trace_log.record(self.scheduler.now, kind, process=self.name, **fields)

    def peers(self) -> list[str]:
        return sorted(n for n in self._network if n != self.name)

    def sent_of_kind(self, kind: str) -> list[Message]:
        return [m for m in self.sent if m.kind == kind]
