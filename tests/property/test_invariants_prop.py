"""Property tests for the invariant oracles.

Two directions: the oracles must stay silent on clean runs (fault-free
campaign scenarios across random seeds), and each oracle must trip on a
hand-built trace that violates exactly its invariant.
"""

from hypothesis import given, settings, strategies as st

from repro.core.invariants import (
    RunRecord,
    check_all,
    check_delivered_events_exist,
    check_delivery_guarantee,
    check_no_delivery_to_crashed,
    check_no_duplicate_actuation,
    check_poll_epochs_monotonic,
    check_views_converge,
)
from repro.eval.chaos import run_chaos_case
from repro.sim.faults import FaultPlan
from repro.sim.tracing import Trace


def record(trace: Trace, **overrides) -> RunRecord:
    """A minimal healthy RunRecord around a synthetic trace."""
    defaults = dict(
        trace=trace,
        alive={"p0": True, "p1": True},
        views={"p0": frozenset({"p0", "p1"}),
               "p1": frozenset({"p0", "p1"})},
        sensor_modes={"s": "gapless"},
        consumers={"s": ("app",)},
        actuations=[],
        fault_free=True,
        lossless=True,
    )
    defaults.update(overrides)
    return RunRecord(**defaults)


# -- clean runs are silent ----------------------------------------------------


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.sampled_from(["gapless", "gap", "naive-broadcast"]))
def test_fault_free_runs_pass_every_oracle(seed, mode):
    violations, _ = run_chaos_case(seed, mode, 600.0, FaultPlan())
    assert violations == []


def test_empty_trace_passes_every_oracle():
    assert check_all(record(Trace())) == []


# -- each oracle trips on a violating trace -----------------------------------


def test_delivery_guarantee_trips_on_dropped_gapless_event():
    trace = Trace()
    trace.record(1.0, "ingest", process="p0", sensor="s", seq=1)
    trace.record(1.5, "ingest", process="p0", sensor="s", seq=2)
    trace.record(2.0, "logic_delivery", process="p0", app="app",
                 sensor="s", seq=1)
    violations = check_delivery_guarantee(record(trace))
    assert len(violations) == 1
    assert "s#2" in violations[0].message
    assert violations[0].oracle == "delivery_guarantee"


def test_delivery_guarantee_excuses_best_effort_under_faults():
    trace = Trace()
    trace.record(1.0, "ingest", process="p0", sensor="s", seq=1)
    lossy = record(trace, sensor_modes={"s": "gap"},
                   fault_free=False, lossless=True)
    assert check_delivery_guarantee(lossy) == []
    # ...but not on a fault-free, loss-free run
    clean = record(trace, sensor_modes={"s": "gap"})
    assert len(check_delivery_guarantee(clean)) == 1


def test_delivered_events_exist_trips_on_phantom_event():
    trace = Trace()
    trace.record(1.0, "sensor_emit", sensor="s", seq=1)
    trace.record(2.0, "logic_delivery", process="p0", app="app",
                 sensor="s", seq=99)
    violations = check_delivered_events_exist(record(trace))
    assert len(violations) == 1
    assert "never emitted" in violations[0].message


def test_duplicate_actuation_trips_without_a_reroute():
    command_id = ("a1", "app@p0", 1)
    rec = record(Trace(), actuations=[
        ("a1", command_id, 5.0), ("a1", command_id, 9.0),
    ])
    violations = check_no_duplicate_actuation(rec)
    assert len(violations) == 1
    assert violations[0].oracle == "no_duplicate_actuation"


def test_duplicate_actuation_excused_by_matching_reroute():
    trace = Trace()
    trace.record(4.0, "command_rerouted", process="p0", actuator="a1")
    command_id = ("a1", "app@p0", 1)
    rec = record(trace, actuations=[
        ("a1", command_id, 5.0), ("a1", command_id, 9.0),
    ])
    assert check_no_duplicate_actuation(rec) == []


def test_no_delivery_to_crashed_trips_inside_down_interval():
    trace = Trace()
    trace.record(10.0, "crash", process="p0")
    trace.record(15.0, "ingest", process="p0", sensor="s", seq=1)
    trace.record(20.0, "recover", process="p0")
    violations = check_no_delivery_to_crashed(record(trace))
    assert len(violations) == 1
    assert "down interval" in violations[0].message


def test_no_delivery_to_crashed_allows_boundary_instants():
    trace = Trace()
    trace.record(10.0, "crash", process="p0")
    trace.record(10.0, "ingest", process="p0", sensor="s", seq=1)
    trace.record(20.0, "recover", process="p0")
    trace.record(20.0, "ingest", process="p0", sensor="s", seq=2)
    assert check_no_delivery_to_crashed(record(trace)) == []


def test_views_converge_trips_on_stale_view():
    rec = record(Trace(), views={
        "p0": frozenset({"p0"}),  # stale: misses live p1
        "p1": frozenset({"p0", "p1"}),
    })
    violations = check_views_converge(rec)
    assert len(violations) == 1
    assert "p0" in violations[0].message


def test_views_converge_ignores_dead_processes():
    rec = record(Trace(), alive={"p0": True, "p1": False},
                 views={"p0": frozenset({"p0"})})
    assert check_views_converge(rec) == []


def test_poll_epochs_trip_on_regression():
    trace = Trace()
    trace.record(1.0, "poll_issued", process="p0", sensor="t", epoch=3)
    trace.record(2.0, "poll_issued", process="p0", sensor="t", epoch=2)
    violations = check_poll_epochs_monotonic(record(trace))
    assert len(violations) == 1
    assert "regressed" in violations[0].message


def test_poll_epochs_trip_on_duplicate_gap_report():
    trace = Trace()
    trace.record(1.0, "epoch_gap", process="p0", sensor="t", epoch=4)
    trace.record(2.0, "epoch_gap", process="p0", sensor="t", epoch=4)
    violations = check_poll_epochs_monotonic(record(trace))
    assert len(violations) == 1
    assert "twice" in violations[0].message


def test_poll_epochs_accept_monotone_streams_per_process():
    trace = Trace()
    trace.record(1.0, "poll_issued", process="p0", sensor="t", epoch=1)
    trace.record(2.0, "poll_issued", process="p1", sensor="t", epoch=1)
    trace.record(3.0, "poll_issued", process="p0", sensor="t", epoch=2)
    trace.record(4.0, "epoch_gap", process="p0", sensor="t", epoch=3)
    trace.record(5.0, "poll_issued", process="p0", sensor="t", epoch=4)
    assert check_poll_epochs_monotonic(record(trace)) == []


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                max_size=30, unique=True))
def test_check_all_flags_exactly_the_dropped_gapless_events(dropped):
    """Randomized: whatever subset of ingested events never reaches the
    app is reported, one violation each, and nothing else trips."""
    trace = Trace()
    for seq in range(31):
        trace.record(float(seq), "ingest", process="p0", sensor="s", seq=seq)
        if seq not in dropped:
            trace.record(float(seq) + 0.5, "logic_delivery", process="p0",
                         app="app", sensor="s", seq=seq)
        trace.record(float(seq), "sensor_emit", sensor="s", seq=seq)
    violations = check_all(record(trace))
    assert sorted(v.context["seq"] for v in violations) == sorted(dropped)
    assert all(v.oracle == "delivery_guarantee" for v in violations)
