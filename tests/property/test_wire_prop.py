"""Property-based round-trip tests for the asyncio wire format."""

from hypothesis import given, strategies as st

from repro.core.events import Event
from repro.net.message import Message
from repro.net.wire import ProcessIdSet
from repro.rt.wire import WIRE_VERSION, decode_body, encode_message, split_frame

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=30),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

events = st.builds(
    Event,
    sensor_id=st.text(min_size=1, max_size=12),
    seq=st.integers(1, 2**31),
    emitted_at=st.floats(0, 1e9, allow_nan=False),
    value=json_scalars,
    size_bytes=st.integers(0, 65_536),
    epoch=st.one_of(st.none(), st.integers(0, 10**6)),
)

pidsets = st.sets(st.text(min_size=1, max_size=8), max_size=6).map(ProcessIdSet)

payload_values = st.one_of(json_values, events, pidsets)


def roundtrip(message: Message) -> Message:
    frame = encode_message(message)
    version, body = split_frame(frame)
    assert version == WIRE_VERSION
    return decode_body(body)


@given(st.dictionaries(st.text(min_size=1, max_size=10), payload_values,
                       max_size=5),
       st.text(min_size=1, max_size=10))
def test_roundtrip_preserves_payload(payload, kind):
    message = Message(kind=kind, src="a", dst="b", payload=payload)
    decoded = roundtrip(message)
    assert decoded.kind == kind
    assert decoded.src == "a" and decoded.dst == "b"
    assert _normalize(decoded.payload) == _normalize(payload)


def _normalize(value):
    """Tuples decode as lists; compare structurally."""
    if isinstance(value, ProcessIdSet):
        return ("pidset", tuple(sorted(value)))
    if isinstance(value, Event):
        return ("event", value.sensor_id, value.seq, value.emitted_at,
                _normalize(value.value), value.size_bytes, value.epoch)
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _normalize(v)) for k, v in value.items()))
    return value


@given(events)
def test_event_roundtrip_exact(event):
    decoded = roundtrip(Message(kind="k", src="a", dst="b",
                                payload={"event": event}))
    assert decoded["event"] == event
    assert decoded["event"].value == event.value
    assert decoded["event"].epoch == event.epoch
