"""Property-based tests for election and the replica-set invariants."""

from hypothesis import given, strategies as st

from repro.core.election import AppElection
from repro.core.placement import active_process, active_replica_set
from repro.membership.views import LocalView

chains = st.lists(st.text(st.characters(categories=("Ll",)), min_size=1,
                          max_size=4), min_size=1, max_size=6, unique=True)


@given(chains, st.data())
def test_active_is_highest_priority_alive(chain, data):
    alive = set(data.draw(st.sets(st.sampled_from(chain))))
    active = active_process(chain, alive)
    if not alive:
        assert active is None
    else:
        assert active in alive
        # Nothing after it in the chain is alive.
        index = chain.index(active)
        assert all(peer not in alive for peer in chain[index + 1:])


@given(chains, st.integers(1, 4), st.data())
def test_replica_set_invariants(chain, k, data):
    alive = set(data.draw(st.sets(st.sampled_from(chain))))
    replicas = active_replica_set(chain, alive, k)
    assert len(replicas) == min(k, len(alive & set(chain)))
    assert len(set(replicas)) == len(replicas)
    assert all(r in alive for r in replicas)
    # The primary (first) is the plain single-active choice.
    if replicas:
        assert replicas[0] == active_process(chain, alive)
    # Priorities are strictly decreasing along the replica list.
    indexes = [chain.index(r) for r in replicas]
    assert indexes == sorted(indexes, reverse=True)


@given(chains, st.data())
def test_consistent_views_agree_on_the_active(chain, data):
    """Any two processes with the *same* belief about liveness elect the
    same active logic node — the election is a pure function of the view."""
    alive = set(data.draw(st.sets(st.sampled_from(chain), min_size=1)))
    decisions = set()
    for me in alive:
        election = AppElection(me, chain)
        view = LocalView.of(me, alive)
        decisions.add(election.decide(view).active)
    assert len(decisions) == 1


@given(chains, st.data())
def test_exactly_one_self_elected_under_consistent_views(chain, data):
    alive = set(data.draw(st.sets(st.sampled_from(chain), min_size=1)))
    self_elected = [
        me for me in alive
        if AppElection(me, chain).decide(LocalView.of(me, alive)).i_am_active
    ]
    assert len(self_elected) == 1


@given(chains, st.data())
def test_should_promote_matches_decide(chain, data):
    alive = set(data.draw(st.sets(st.sampled_from(chain), min_size=1)))
    me = data.draw(st.sampled_from(sorted(alive)))
    election = AppElection(me, chain)
    view = LocalView.of(me, alive)
    assert election.should_promote(view) == election.decide(view).i_am_active
