"""Property-based tests for window buffering invariants."""

from hypothesis import given, strategies as st

from repro.core.events import Event
from repro.core.windows import (
    CountWindow,
    KeepLast,
    OnCount,
    TimeWindow,
    WindowInstance,
)


def events_strategy(max_size=60):
    return st.lists(
        st.floats(0.0, 0.9, allow_nan=False), max_size=max_size
    ).map(
        lambda gaps: [
            Event(sensor_id="s", seq=i + 1, emitted_at=t, value=i, size_bytes=4)
            for i, t in enumerate(_cumsum(gaps))
        ]
    )


def _cumsum(gaps):
    total = 0.0
    out = []
    for gap in gaps:
        total += gap
        out.append(total)
    return out


@given(events_strategy(), st.integers(1, 10))
def test_count_window_default_partitions_stream(events, count):
    """Disjoint batches: every event appears in exactly one snapshot, in
    order, and every snapshot (except possibly a pending tail) is full."""
    fired = []
    window = WindowInstance(stream="s", spec=CountWindow(count),
                            on_fire=fired.append)
    for event in events:
        window.add(event, event.emitted_at)
    snapshot_seqs = [e.seq for snapshot in fired for e in snapshot]
    assert snapshot_seqs == [e.seq for e in events[: len(snapshot_seqs)]]
    assert all(len(snapshot) == count for snapshot in fired)
    assert len(window.buffered) == len(events) - len(snapshot_seqs)


@given(events_strategy(), st.integers(1, 10))
def test_count_bound_never_exceeded(events, count):
    window = WindowInstance(stream="s",
                            spec=CountWindow(count, trigger=OnCount(10_000)),
                            on_fire=lambda s: None)
    for event in events:
        window.add(event, event.emitted_at)
        assert len(window.buffered) <= count
    # The survivors are exactly the newest `count` events.
    expected = [e.seq for e in events[-count:]]
    assert [e.seq for e in window.buffered] == expected


@given(events_strategy(), st.floats(0.1, 5.0, allow_nan=False))
def test_time_bound_keeps_only_span(events, span):
    window = WindowInstance(stream="s",
                            spec=TimeWindow(span, trigger=OnCount(10_000)),
                            on_fire=lambda s: None)
    for index, event in enumerate(events):
        window.add(event, event.emitted_at)
        cutoff = event.emitted_at - span
        assert all(e.emitted_at >= cutoff for e in window.buffered)
        added_so_far = events[: index + 1]
        expected = sum(1 for e in added_so_far if e.emitted_at >= cutoff)
        assert expected == len(window.buffered)


@given(events_strategy(), st.integers(2, 8))
def test_sliding_window_overlap(events, count):
    """KeepLast(count-1) slides by one: consecutive snapshots overlap by
    count-1 events."""
    fired = []
    spec = CountWindow(count, evictor=KeepLast(count - 1))
    window = WindowInstance(stream="s", spec=spec, on_fire=fired.append)
    for event in events:
        window.add(event, event.emitted_at)
    for a, b in zip(fired, fired[1:]):
        assert [e.seq for e in a][1:] == [e.seq for e in b][:-1]
