"""Property-based tests for Marzullo interval fusion."""

from hypothesis import assume, given, strategies as st

from repro.core.marzullo import FusionError, Interval, fuse

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def interval(draw):
    lo = draw(finite)
    width = draw(st.floats(0, 1e5, allow_nan=False))
    return Interval(lo, lo + width)


@st.composite
def fusion_case(draw):
    intervals = draw(st.lists(interval(), min_size=1, max_size=8))
    f = draw(st.integers(0, len(intervals) - 1))
    return intervals, f


def coverage(intervals, point) -> int:
    return sum(1 for i in intervals if i.contains(point))


@given(fusion_case())
def test_fused_endpoints_are_covered_by_quorum(case):
    intervals, f = case
    try:
        fused = fuse(intervals, f)
    except FusionError:
        # Legitimate: no point is covered by n - f intervals. Verify that by
        # sampling every endpoint.
        required = len(intervals) - f
        for i in intervals:
            assert coverage(intervals, i.lo) < required
            assert coverage(intervals, i.hi) < required
        return
    required = len(intervals) - f
    assert coverage(intervals, fused.lo) >= required
    assert coverage(intervals, fused.hi) >= required


@given(fusion_case())
def test_fused_interval_within_extremes(case):
    intervals, f = case
    try:
        fused = fuse(intervals, f)
    except FusionError:
        return
    assert fused.lo >= min(i.lo for i in intervals)
    assert fused.hi <= max(i.hi for i in intervals)
    assert fused.lo <= fused.hi


@given(st.lists(interval(), min_size=1, max_size=8))
def test_f_zero_equals_common_intersection_when_it_exists(intervals):
    lo = max(i.lo for i in intervals)
    hi = min(i.hi for i in intervals)
    assume(lo <= hi)
    fused = fuse(intervals, 0)
    assert fused == Interval(lo, hi)


@given(
    st.floats(-100, 100, allow_nan=False),
    st.floats(0.1, 5.0, allow_nan=False),
    st.integers(1, 3),
    st.integers(0, 2),
    st.data(),
)
def test_true_value_contained_despite_f_liars(truth, uncertainty, good, liars, data):
    """If at most f sensors lie and the rest report intervals containing the
    truth, the fused interval contains the truth (Marzullo's guarantee)."""
    assume(good > liars)
    honest = [
        Interval.around(
            truth + data.draw(st.floats(-uncertainty, uncertainty)),
            uncertainty * 2,
        )
        for _ in range(good)
    ]
    lies = [
        Interval.around(data.draw(st.floats(500, 1000)), uncertainty)
        for _ in range(liars)
    ]
    fused = fuse(honest + lies, liars)
    assert fused.contains(truth)


@given(fusion_case())
def test_monotone_in_f(case):
    """Raising f (weaker quorum) can only widen or keep the interval."""
    intervals, f = case
    assume(f + 1 < len(intervals))
    try:
        tight = fuse(intervals, f)
    except FusionError:
        return
    loose = fuse(intervals, f + 1)
    assert loose.lo <= tight.lo
    assert loose.hi >= tight.hi
