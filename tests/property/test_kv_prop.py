"""Property-based tests for the replicated store's convergence.

The contract is eventual convergence under last-writer-wins: whatever the
interleaving of writes, link drops, and sync rounds, once the network is
healed and anti-entropy has run, every replica holds the identical map.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.membership.heartbeat import HeartbeatService
from repro.sim.scheduler import Scheduler
from repro.storage.kv import ReplicatedStore, StoreBackend
from tests.helpers import FakeEnv

operations = st.lists(
    st.tuples(
        st.integers(0, 2),                      # writing replica
        st.sampled_from(["k1", "k2", "k3"]),    # key
        st.one_of(st.integers(0, 100), st.just("__del__")),
        st.floats(0.1, 20.0),                   # time of the write
    ),
    max_size=20,
)

drops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2)).filter(lambda p: p[0] != p[1]),
    max_size=2,
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations, drops, st.floats(1.0, 8.0))
def test_replicas_converge(ops, dropped_links, heal_at):
    sched = Scheduler()
    names = ["r0", "r1", "r2"]
    envs = [FakeEnv(name, sched) for name in names]
    envs[0].link(*envs[1:])
    stores = []
    for env in envs:
        heartbeat = HeartbeatService(env, interval=0.5, timeout=2.0)
        store = ReplicatedStore(env, heartbeat, StoreBackend(env.name),
                                sync_interval=2.0)
        heartbeat.start()
        store.start()
        stores.append(store)

    for a, b in dropped_links:
        envs[0].drop_between(names[a], names[b])

    def heal():
        for env in envs:
            env.dropped_links.clear()

    sched.call_at(heal_at + 20.0, heal)

    for replica, key, value, at in ops:
        store = stores[replica]
        if value == "__del__":
            sched.call_at(at, store.delete, key)
        else:
            sched.call_at(at, store.put, key, value)

    # Quiesce: several anti-entropy rounds after the last write and heal.
    sched.run_until(60.0)

    maps = [store.items() for store in stores]
    assert maps[0] == maps[1] == maps[2], maps
    # And the winning version per key is a value some replica wrote.
    written = {(key, value) for _r, key, value, _t in ops if value != "__del__"}
    for key, value in maps[0].items():
        assert (key, value) in written
