"""Property-based test of the paper's central guarantee.

Section 4.1: "any event received from a sensor by any correct process will
be eventually delivered to, and processed by, the applications that are
interested in that event."

Hypothesis generates adversarial scenarios — per-link loss rates, a crash /
recovery schedule, event timing — and the property asserts post-ingest
completeness once the system quiesces with at least one correct process.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.delivery import GAPLESS
from repro.core.home import Home
from tests.integration.conftest import collector_app

scenario = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "loss_rates": st.lists(st.floats(0.0, 0.6), min_size=4, max_size=4),
    # Who crashes, when, and when they come back (before the end).
    "crashes": st.lists(
        st.tuples(st.integers(0, 3), st.floats(2.0, 20.0), st.floats(3.0, 20.0)),
        max_size=2,
    ),
    "emit_times": st.lists(st.floats(1.0, 25.0), min_size=1, max_size=25),
})


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario)
def test_post_ingest_completeness(config):
    home = Home(seed=config["seed"])
    names = [f"p{i}" for i in range(4)]
    for name in names:
        home.add_process(name, adapters=("ip", "zwave"))
    home.add_sensor("s1", kind="door", technology="ip", processes=names)
    home.add_actuator("a1", processes=["p0"])
    app, collected = collector_app(["s1"], GAPLESS, actuator="a1")
    home.deploy(app)
    home.start()

    for index, link_loss in enumerate(config["loss_rates"]):
        home.set_link_loss("s1", f"p{index}", link_loss)

    # Hypothesis may propose overlapping windows for one victim; guard the
    # injections at fire time (Home's entry points reject double-crash).
    def crash_if_alive(name):
        if home.processes[name].alive:
            home.crash_process(name)

    def recover_if_down(name):
        if not home.processes[name].alive:
            home.recover_process(name)

    crashed_windows = []
    for victim, down_at, up_after in config["crashes"]:
        name = f"p{victim}"
        down = down_at
        up = down + up_after
        home.scheduler.call_at(down, crash_if_alive, name)
        home.scheduler.call_at(up, recover_if_down, name)
        crashed_windows.append((name, down, up))

    sensor = home.sensor("s1")
    for at in sorted(config["emit_times"]):
        home.scheduler.call_at(at, sensor.emit, at)

    # Run long enough for detection, sync, and re-election to quiesce.
    home.run_until(90.0)

    ingested = {e["seq"] for e in home.trace.of_kind("ingest")}
    processed = {e.seq for e in collected.events}
    missing = ingested - processed
    assert not missing, (
        f"ingested events never processed: {sorted(missing)} "
        f"(crashes={crashed_windows})"
    )
