"""Property-based tests for the Gap protocol's (weaker) contract.

Gap promises best effort, not completeness. What it *must* guarantee:

- the app never sees an event the platform did not ingest (no inventions);
- the app never processes the same event twice in failure-free runs;
- in a failure-free run with the forwarder's link lossless, nothing is
  lost either — Gap's losses come only from failures.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.delivery import GAP
from repro.core.home import Home
from tests.integration.conftest import collector_app

scenario = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "n_processes": st.integers(2, 5),
    "receiver_loss": st.floats(0.0, 0.5),
    "emit_count": st.integers(1, 30),
})


def build(config):
    home = Home(seed=config["seed"])
    names = [f"p{i}" for i in range(config["n_processes"])]
    for name in names:
        home.add_process(name, adapters=("ip", "zwave"))
    home.add_sensor("s1", kind="door", technology="ip", processes=names,
                    loss_rate=config["receiver_loss"])
    home.add_actuator("a1", processes=["p0"])
    app, collected = collector_app(["s1"], GAP, actuator="a1")
    home.deploy(app)
    home.start()
    return home, collected


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario)
def test_no_inventions_and_no_duplicates(config):
    home, collected = build(config)
    sensor = home.sensor("s1")
    for i in range(config["emit_count"]):
        home.scheduler.call_at(1.0 + 0.2 * i, sensor.emit, i)
    home.run_until(20.0)

    processed = [e.seq for e in collected.events]
    assert len(processed) == len(set(processed)), "duplicate processing"
    ingested = {e["seq"] for e in home.trace.of_kind("ingest")}
    assert set(processed) <= ingested, "app saw an event nobody ingested"


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000), st.integers(2, 5), st.integers(1, 30))
def test_failure_free_lossless_run_is_complete(seed, n, count):
    home, collected = build({"seed": seed, "n_processes": n,
                             "receiver_loss": 0.0, "emit_count": count})
    sensor = home.sensor("s1")
    for i in range(count):
        home.scheduler.call_at(1.0 + 0.2 * i, sensor.emit, i)
    home.run_until(20.0)
    assert len(collected.events) == count
