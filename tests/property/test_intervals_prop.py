"""Property-based tests: IntervalSet behaves like a set of ints."""

from hypothesis import given, strategies as st

from repro.core.intervals import IntervalSet

ranges = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 60)).map(
        lambda pair: (pair[0], pair[0] + pair[1])
    ),
    max_size=20,
)


@given(ranges)
def test_matches_model_set(range_list):
    model: set[int] = set()
    interval_set = IntervalSet()
    for lo, hi in range_list:
        interval_set.add_range(lo, hi)
        model.update(range(lo, hi + 1))
    assert set(interval_set) == model
    assert len(interval_set) == len(model)
    for probe in range(-1, 265):
        assert (probe in interval_set) == (probe in model)


@given(ranges)
def test_ranges_are_sorted_disjoint_and_non_adjacent(range_list):
    interval_set = IntervalSet(range_list)
    spans = interval_set.ranges()
    for lo, hi in spans:
        assert lo <= hi
    for (_lo, prev_hi), (next_lo, _hi) in zip(spans, spans[1:]):
        assert next_lo > prev_hi + 1  # adjacent ranges must have merged


@given(ranges, st.integers(0, 260), st.integers(0, 260))
def test_missing_between_matches_model(range_list, a, b):
    lo, hi = min(a, b), max(a, b)
    interval_set = IntervalSet(range_list)
    model = set(interval_set)
    expected = [v for v in range(lo, hi + 1) if v not in model]
    assert interval_set.missing_between(lo, hi) == expected


@given(ranges, ranges)
def test_difference_matches_model(ours_list, theirs_list):
    ours = IntervalSet(ours_list)
    theirs = IntervalSet(theirs_list)
    expected = sorted(set(ours) - set(theirs))
    assert sorted(ours.difference_values(theirs)) == expected


@given(ranges, ranges)
def test_merge_is_union(a_list, b_list):
    a = IntervalSet(a_list)
    b = IntervalSet(b_list)
    union = set(a) | set(b)
    a.merge(b)
    assert set(a) == union


@given(st.lists(st.integers(0, 100), max_size=50))
def test_insertion_order_irrelevant(values):
    forward = IntervalSet()
    backward = IntervalSet()
    for v in values:
        forward.add(v)
    for v in reversed(values):
        backward.add(v)
    assert forward == backward
    assert forward.ranges() == backward.ranges()
