"""Property-based tests for ring ordering on local views."""

from hypothesis import given, strategies as st

from repro.membership.views import LocalView

names = st.sets(st.text(st.characters(categories=("Ll",)), min_size=1,
                        max_size=6), min_size=1, max_size=8)


@given(names)
def test_successor_chain_visits_every_member_once(members):
    owner = sorted(members)[0]
    view = LocalView.of(owner, members)
    if len(view) == 1:
        assert view.ring_successor() is None
        return
    visited = []
    current = owner
    for _ in range(len(view)):
        current = view.ring_successor(current)
        visited.append(current)
    assert sorted(visited) == sorted(view.members)
    assert visited[-1] == owner  # full cycle returns home


@given(names)
def test_successor_always_a_member_and_never_self(members):
    owner = sorted(members)[0]
    view = LocalView.of(owner, members)
    for member in view.members:
        successor = view.ring_successor(member)
        if len(view) == 1:
            assert successor is None
        else:
            assert successor in view.members
            assert successor != member


@given(names, names)
def test_merged_with_is_union(a, b):
    owner = sorted(a)[0]
    view = LocalView.of(owner, a)
    assert view.merged_with(b) == frozenset(a) | frozenset(b) | {owner}
