"""Ablations of Rivulet's design choices (beyond the paper's figures).

Each ablation switches off one mechanism DESIGN.md calls out and measures
what breaks:

- **successor sync off** — a recovered process is never back-filled, so the
  platform's post-ingest completeness degrades across crash/recovery;
- **failure-detection threshold** — the Gap hole of Fig. 7 scales with the
  threshold, quantifying the latency/stability trade-off;
- **stock vs modified OpenZWave** — the Section 7 library modification:
  host-side poll serialization delays co-located poll-based sensors.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.delivery import GAP, GAPLESS, PollingPolicy, PollMode
from repro.core.graph import App
from repro.core.home import Home, HomeConfig
from repro.core.operators import Operator
from repro.core.windows import TimeWindow
from repro.eval.report import render_table
from tests.integration.conftest import five_process_home


def _crash_recovery_run(sync_enabled: bool) -> dict:
    config = HomeConfig(seed=11)
    config.gapless_options.sync_enabled = sync_enabled
    home, collected = five_process_home(
        receiving=["p1"], guarantee=GAPLESS, config=config
    )
    home.run_until(1.0)
    sensor = home.sensor("s1")
    sensor.start_periodic(10.0)
    home.scheduler.call_at(10.0, home.crash_process, "p0")
    home.scheduler.call_at(20.0, home.recover_process, "p0")
    home.run_until(60.0)
    distinct = {e.seq for e in collected.events}
    return {
        "emitted": sensor.events_emitted,
        "processed": len(distinct),
        "p0_log": home.processes["p0"].store.total_events(),
    }


def test_ablation_successor_sync(benchmark, show):
    def run():
        return {
            "with-sync": _crash_recovery_run(True),
            "without-sync": _crash_recovery_run(False),
        }

    results = run_once(benchmark, run)
    rows = [
        [name, r["emitted"], r["processed"], r["p0_log"]]
        for name, r in results.items()
    ]
    show(render_table(
        "ablation: Gapless successor synchronization",
        ["variant", "emitted", "processed_by_app", "p0_journal"],
        rows,
        ["p0 (the app-bearing process) crashes at t=10s, recovers at t=20s"],
    ))

    with_sync = results["with-sync"]
    without = results["without-sync"]
    # With sync, the recovered process is fully back-filled and the app
    # misses nothing; without it, p0's journal has a hole covering its
    # downtime and the events during the outage window are at risk.
    assert with_sync["processed"] == with_sync["emitted"]
    assert with_sync["p0_log"] >= with_sync["emitted"] - 1
    assert without["p0_log"] < with_sync["p0_log"] - 50


@pytest.mark.parametrize("threshold", [1.0, 2.0, 4.0])
def test_ablation_detection_threshold(benchmark, show, threshold):
    def run():
        config = HomeConfig(seed=7, failure_detection_s=threshold)
        home, collected = five_process_home(
            receiving=[f"p{i}" for i in range(5)], guarantee=GAP, config=config
        )
        home.run_until(1.0)
        sensor = home.sensor("s1")
        sensor.start_periodic(10.0)
        home.scheduler.call_at(24.0, home.crash_process, "p0")
        home.run_until(60.0)
        lost = sensor.events_emitted - len({e.seq for e in collected.events})
        return lost

    lost = run_once(benchmark, run)
    show(render_table(
        f"ablation: Gap loss vs detection threshold ({threshold:g}s)",
        ["threshold_s", "events_lost"],
        [[threshold, lost]],
        ["10 events/s; the hole tracks threshold + keep-alive slack"],
    ))
    # The hole is roughly rate * (threshold + up to one keep-alive interval).
    assert 10 * threshold * 0.8 <= lost <= 10 * (threshold + 1.2) + 8


def _openzwave_run(modified: bool) -> dict:
    home = Home(seed=4)
    home.add_process("hub", modified_openzwave=modified)
    home.add_process("tv", modified_openzwave=modified)

    operator = Operator("Monitor", on_window=lambda ctx, c: None)
    for name in ("za", "zb", "zc", "zd", "ze"):
        operator.add_sensor(
            name, GAPLESS, TimeWindow(1.8),
            polling=PollingPolicy(epoch_s=1.8, mode=PollMode.COORDINATED),
        )
    operator.add_actuator("a1", GAPLESS)
    home.add_actuator("a1", processes=["hub"])
    for name in ("za", "zb", "zc", "zd", "ze"):
        home.add_sensor(name, kind="temperature")
    home.deploy(App("monitor", operator))
    home.run_until(120.0)
    delays = [e["delay"] for e in home.trace.of_kind("logic_delivery")]
    return {
        "epoch_gaps": home.trace.count("epoch_gap"),
        "mean_delay_ms": 1000.0 * sum(delays) / max(1, len(delays)),
        "deliveries": len(delays),
        "polls": home.trace.count("poll_request"),
    }


def test_ablation_openzwave_modification(benchmark, show):
    def run():
        return {
            "modified (concurrent polls)": _openzwave_run(True),
            "stock (serialized polls)": _openzwave_run(False),
        }

    results = run_once(benchmark, run)
    rows = [
        [name, r["deliveries"], r["epoch_gaps"], r["polls"], r["mean_delay_ms"]]
        for name, r in results.items()
    ]
    show(render_table(
        "ablation: OpenZWave concurrency modification (Section 7)",
        ["variant", "deliveries", "epoch_gaps", "polls", "mean_delay_ms"],
        rows,
        ["five co-located Z-Wave poll sensors, 1.8s epochs, 2 processes"],
    ))
    modified = results["modified (concurrent polls)"]
    stock = results["stock (serialized polls)"]
    # Serializing polls to five sensors with ~0.5s service times inside a
    # 1.8s epoch starves epochs and triggers expensive re-polling.
    assert stock["epoch_gaps"] > modified["epoch_gaps"]
    assert modified["epoch_gaps"] <= 2
    assert stock["polls"] > 1.4 * modified["polls"]


def _replication_run(active_replicas: int) -> dict:
    config = HomeConfig(seed=23, active_replicas=active_replicas)
    home, collected = five_process_home(
        receiving=[f"p{i}" for i in range(5)], guarantee=GAP, config=config
    )
    home.run_until(1.0)
    sensor = home.sensor("s1")
    sensor.start_periodic(10.0)
    home.scheduler.call_at(24.0, home.crash_process, "p0")
    home.run_until(48.0)
    delivered = len({e.seq for e in collected.events})
    return {
        "lost": sensor.events_emitted - delivered,
        "processings": home.trace.count("logic_delivery"),
        "emitted": sensor.events_emitted,
    }


def test_ablation_active_replication(benchmark, show):
    """Active replication (k=2) removes the Fig. 7 failover hole entirely,
    at the price of duplicated forwarding/processing — the recovery-time
    vs. overhead trade-off the paper's related work (Martin et al.)
    discusses."""

    def run():
        return {f"k={k}": _replication_run(k) for k in (1, 2)}

    results = run_once(benchmark, run)
    rows = [[name, r["emitted"], r["lost"], r["processings"]]
            for name, r in results.items()]
    show(render_table(
        "ablation: active replication under the Fig. 7 crash (Gap delivery)",
        ["replicas", "emitted", "events_lost", "logic_processings"],
        rows,
        ["crash of the primary at t=24s, 2s detection threshold"],
    ))
    assert results["k=1"]["lost"] >= 15          # the Fig. 7 hole
    assert results["k=2"]["lost"] <= 3           # no hole with a hot spare
    # The price: roughly double the processing work across the home.
    assert results["k=2"]["processings"] > 1.6 * results["k=1"]["processings"]


@pytest.mark.parametrize("interval", [0.25, 0.5, 1.0])
def test_ablation_keepalive_interval(benchmark, show, interval):
    """The keep-alive cadence trade-off: faster heartbeats detect failures
    sooner (smaller Gap holes) but add chatter on the shared home network
    — the congestion effect Fig. 4a attributes to "increasing keep-alive
    message exchange"."""

    def run():
        config = HomeConfig(
            seed=7,
            heartbeat_interval=interval,
            failure_detection_s=4 * interval,
        )
        home, collected = five_process_home(
            receiving=[f"p{i}" for i in range(5)], guarantee=GAP,
            config=config,
        )
        home.run_until(1.0)
        sensor = home.sensor("s1")
        sensor.start_periodic(10.0)
        home.scheduler.call_at(24.0, home.crash_process, "p0")
        home.run_until(60.0)
        keepalive_bytes = sum(
            e["bytes"] for e in home.trace.of_kind("net_send")
            if e["kind"] == "keepalive"
        )
        lost = sensor.events_emitted - len({e.seq for e in collected.events})
        return {
            "events_lost": lost,
            "keepalive_bytes_per_s": keepalive_bytes / 60.0,
        }

    result = run_once(benchmark, run)
    show(render_table(
        f"ablation: keep-alive interval {interval:g}s "
        f"(detection {4 * interval:g}s)",
        ["interval_s", "events_lost_on_crash", "keepalive_bytes_per_s"],
        [[interval, result["events_lost"], result["keepalive_bytes_per_s"]]],
    ))
    # The crash hole tracks the detection threshold (4x interval at 10 ev/s)
    expected_hole = 10 * 4 * interval
    assert expected_hole * 0.6 <= result["events_lost"] <= expected_hole * 1.6 + 8
