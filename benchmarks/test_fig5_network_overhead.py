"""Fig. 5 — network overhead normalized against Gap (5 processes).

Paper: Gapless costs a constant amount regardless of how many processes
receive the event directly; naive broadcast costs ~23% more at 2 receiving
processes, ~2x at 3, ~3x at 5 (4 B events) but is cheaper at 1 (the ring's
S/V metadata); normalized overhead is lower for large events because the
payload amortizes headers and metadata.
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import fig5_network_overhead


def test_fig5_network_overhead(benchmark, show):
    table = run_once(benchmark, fig5_network_overhead, duration=30.0)
    show(table.render())

    def bytes_per_event(protocol, size):
        return {
            row[2]: row[3]
            for row in table.rows
            if row[0] == protocol and row[1] == size
        }

    gapless4 = bytes_per_event("gapless", 4)
    bcast4 = bytes_per_event("naive-broadcast", 4)

    # Gapless: constant in the number of receiving processes.
    assert max(gapless4.values()) / min(gapless4.values()) < 1.1
    # The paper's ratios: <1x at one receiver, ~1.2x at two, ~2x at three,
    # ~3x at five.
    assert bcast4[1] / gapless4[1] < 1.0
    assert 1.1 < bcast4[2] / gapless4[2] < 1.5
    assert 1.6 < bcast4[3] / gapless4[3] < 2.4
    assert 2.6 < bcast4[5] / gapless4[5] < 3.9

    # Normalized overhead shrinks as events grow.
    def normalized(protocol, size, m):
        return table.cell("normalized_vs_gap", protocol=protocol,
                          event_bytes=size, receiving=m)

    for m in (1, 3, 5):
        assert normalized("gapless", 20_480, m) < normalized("gapless", 4, m)
