"""Fig. 6 — events delivered under sensor-process link loss.

Paper: at low loss Gap ~= Gapless; at 10% loss with 2 receiving processes
Gap delivers 90% vs Gapless 99%; at 50% loss Gap delivers ~50% while
Gapless delivers ~75/87/95% with 2/4/5 receiving processes — the percentage
received by *at least one* process.
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import fig6_link_loss


def test_fig6_link_loss(benchmark, show):
    table = run_once(benchmark, fig6_link_loss, duration=120.0, seeds=(42, 43))
    show(table.render())

    def pct(guarantee, m, loss):
        return table.cell("delivered_pct", guarantee=guarantee, receiving=m,
                          loss_rate=loss)

    # Gap tracks the single forwarder's link: ~ (1 - loss).
    for m in (1, 2, 4, 5):
        assert 86 <= pct("gap", m, 0.10) <= 93
        assert 45 <= pct("gap", m, 0.50) <= 55

    # Gapless harvests every receiving process: ~ 1 - loss^m.
    assert 97 <= pct("gapless", 2, 0.10) <= 100
    assert 70 <= pct("gapless", 2, 0.50) <= 80
    assert 88 <= pct("gapless", 4, 0.50) <= 97
    assert 93 <= pct("gapless", 5, 0.50) <= 100

    # At zero loss everyone delivers everything.
    for guarantee in ("gap", "gapless"):
        assert pct(guarantee, 2, 0.0) > 99.0

    # Single receiving process: the protocols are equivalent.
    for loss in (0.10, 0.50):
        assert abs(pct("gap", 1, loss) - pct("gapless", 1, loss)) < 3.0
