"""Fig. 7 — events received by the app across a process failure.

Paper: the app-bearing process is crashed at t=24 s with a 2 s failure
detection threshold. Gap shows a hole of ~20 events; Gapless redelivers the
outstanding ~20 events in a burst right after the new primary promotes
(the spike at t~=27 s).
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import fig7_process_failure
from repro.eval.report import SeriesPlot


def test_fig7_process_failure(benchmark, show):
    table = run_once(benchmark, fig7_process_failure, crash_at=24.0)

    plot = SeriesPlot(title=table.title, x_label="t")
    for guarantee in ("gap", "gapless"):
        plot.series[guarantee] = [
            (row[1], row[2]) for row in table.rows if row[0] == guarantee
        ]
    show(plot.render(width=40))
    show("\n".join(f"note: {note}" for note in table.notes))

    gap = {row[1]: row[2] for row in table.rows if row[0] == "gap"}
    gapless = {row[1]: row[2] for row in table.rows if row[0] == "gapless"}

    # Steady state before the crash: 10 events/s for both.
    for t in (10.0, 20.0, 23.0):
        assert gap[t] == 10 and gapless[t] == 10
    # Detection window: silence.
    assert gap[25.0] == 0 and gapless[25.0] == 0
    # Gapless catch-up burst (~20 redelivered + the second's own 10).
    assert max(gapless[26.0], gapless[27.0]) >= 25
    # Gap just resumes at the nominal rate: the hole stays.
    assert max(gap[26.0], gap[27.0]) <= 15
    # Post-recovery steady state.
    for t in (30.0, 40.0):
        assert gap[t] == 10 and gapless[t] == 10

    # Totals: Gapless lost nothing post-ingest, Gap lost the ~20-event hole.
    def delivered(note_prefix):
        for note in table.notes:
            if note.startswith(note_prefix):
                return float(note.split(":")[1].split("%")[0])
        raise AssertionError(f"missing note {note_prefix}")

    assert delivered("gapless") >= 99.5
    assert 90.0 <= delivered("gap") <= 97.5
