"""Table 1 — the application catalog, each app run end to end.

Paper: 13 applications spanning efficiency/convenience/elder-care/safety/
billing, five requesting Gap and eight requesting Gapless delivery.
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import table1_app_catalog


def test_table1_app_catalog(benchmark, show):
    table = run_once(benchmark, table1_app_catalog)
    show(table.render())

    assert len(table.rows) == 13
    deliveries = [row[2] for row in table.rows]
    assert deliveries.count("gap") == 5
    assert deliveries.count("gapless") == 8
    # Every app processed events; none crashed its operator.
    assert all(row[3] > 0 for row in table.rows)
    assert all(row[6] == 0 for row in table.rows)
    # The alerting apps actually alerted and actuating apps actuated.
    by_name = {row[0]: row for row in table.rows}
    assert by_name["Intrusion-detection"][4] >= 1
    assert by_name["Fall alert"][4] >= 1
    assert by_name["Occupancy-based HVAC"][5] >= 1
    assert by_name["Temperature-based HVAC"][5] >= 1
