"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints it
(through captured-output suppression, so ``pytest benchmarks/
--benchmark-only`` shows the reproduced numbers), and asserts the paper's
qualitative shape.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print straight to the terminal despite pytest's capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full regeneration (these are simulations, not microbenches)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
