"""Fig. 1 — reception skew in a 15-day home deployment.

Paper: six Z-Wave sensors (4 motion, 2 door) multicasting to three
processes; skew of 2357 events on Door 1, 58 on Motion 1, 21 on Motion 3,
caused by radio interference and obstructions.
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import fig1_deployment_skew


def test_fig1_deployment_skew(benchmark, show):
    table = run_once(benchmark, fig1_deployment_skew, days=15.0)
    show(table.render())

    skew = {row[0]: row[5] for row in table.rows}
    emitted = {row[0]: row[1] for row in table.rows}

    # Door 1's obstructed link produces a thousands-of-events skew,
    # motion sensors only tens (paper: 2357 vs 58 and 21).
    assert skew["door1"] > 1500
    assert all(skew[f"motion{i}"] < 150 for i in range(1, 5))
    assert skew["door1"] > 15 * max(skew[s] for s in skew if s != "door1")
    # Every sensor's best link delivers nearly everything.
    for row in table.rows:
        assert max(row[2], row[3], row[4]) >= emitted[row[0]] * 0.97
