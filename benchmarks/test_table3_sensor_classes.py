"""Table 3 — off-the-shelf sensor classification.

Paper: small sensors emit 4-8 B events (temperature, humidity, motion,
moisture, door/window, UV, energy, vibration); large ones 1-20 KB (camera,
microphone).
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import table3_sensor_classes


def test_table3_sensor_classes(benchmark, show):
    table = run_once(benchmark, table3_sensor_classes)
    show(table.render())

    by_kind = {row[0]: row for row in table.rows}
    for kind in ("temperature", "humidity", "motion", "moisture", "door",
                 "uv", "energy", "vibration"):
        assert by_kind[kind][1] == "small"
        assert 4 <= by_kind[kind][4] <= 8
    for kind in ("camera", "microphone"):
        assert by_kind[kind][1] == "large"
        assert 1024 <= by_kind[kind][4] <= 20_480
    # Poll-based sensors of Section 8.5 are classified as such.
    for kind in ("temperature", "luminance", "humidity", "uv"):
        assert by_kind[kind][2] == "poll"
