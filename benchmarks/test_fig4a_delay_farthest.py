"""Fig. 4a — delay vs number of processes, receiver farthest from the app.

Paper: Gap delay increases only slightly with process count (keep-alive
chatter); Gapless is ~unchanged at 2-3 processes then grows linearly to 5;
the Gapless premium at 2-3 processes is 8-10 ms for 4/8 B events; delay
grows with event size.
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import fig4a_delay_farthest


def test_fig4a_delay_farthest(benchmark, show):
    table = run_once(benchmark, fig4a_delay_farthest, duration=60.0)
    show(table.render())

    def series(guarantee, size):
        return [table.cell("delay_ms", guarantee=guarantee, event_bytes=size,
                           processes=n) for n in (2, 3, 4, 5)]

    gap4 = series("gap", 4)
    gapless4 = series("gapless", 4)

    # Gap: slight increase only.
    assert gap4[3] - gap4[0] < 1.5
    assert gap4[3] > gap4[0]
    # Gapless: grows with the ring; roughly linear 3 -> 5.
    steps = [gapless4[i + 1] - gapless4[i] for i in range(3)]
    assert all(step > 0 for step in steps)
    assert max(steps[1:]) / min(steps[1:]) < 1.8
    # Premium at 2-3 processes in the high-single-digit millisecond band.
    assert 4.0 <= gapless4[0] - gap4[0] <= 12.0
    assert 6.0 <= gapless4[1] - gap4[1] <= 14.0
    # Delay increases with event size for both protocols.
    for guarantee in ("gap", "gapless"):
        small = series(guarantee, 4)
        large = series(guarantee, 20_480)
        assert all(l > s for l, s in zip(large, small))
