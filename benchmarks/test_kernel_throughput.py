"""Kernel throughput microbenchmarks (marked ``perf``; not part of tier-1).

Run explicitly::

    pytest benchmarks/test_kernel_throughput.py -m perf --no-header -q

The numbers printed here are smoke-sized; the authoritative run (with
seed-baseline speedups) is ``python -m repro.eval.cli perf``, which writes
``BENCH_kernel.json``.
"""

from __future__ import annotations

import pytest

from repro.eval.perf import (
    bench_combined,
    bench_fig1,
    bench_fleet,
    bench_network,
    bench_scheduler,
    run_kernel_bench,
)

pytestmark = pytest.mark.perf


def test_scheduler_throughput(show):
    result = bench_scheduler(sim_seconds=50.0)
    show(f"scheduler: {result['events_per_s']:,.0f} events/s")
    # Smoke floor: orders of magnitude below the optimized kernel's rate,
    # only catching a catastrophic regression or a broken bench.
    assert result["events_per_s"] > 100_000


def test_network_throughput(show):
    result = bench_network(messages=20_000)
    show(f"network: {result['messages_per_s']:,.0f} messages/s")
    assert result["messages"] == 20_000
    assert result["messages_per_s"] > 20_000


def test_combined_throughput(show):
    result = bench_combined(sim_seconds=60.0)
    show(f"combined: {result['events_per_s']:,.0f} events/s")
    assert result["events_per_s"] > 100_000


def test_fig1_wall_clock(show):
    result = bench_fig1(days=2.0)
    show(f"fig1 (2 days): {result['wall_clock_s']:.2f}s")
    assert result["wall_clock_s"] < 10.0


def test_fleet_throughput(show):
    result = bench_fleet(homes=4, days=1.0)
    show(f"fleet (4 homes x 1 day): {result['events_per_s']:,.0f} events/s, "
         f"{result['homes_days_per_s']:.2f} home-days/s, "
         f"peak rss {result['peak_rss_mb']:.0f} MB")
    assert result["homes"] == 4
    assert result["events_per_s"] > 20_000
    assert result["events_emitted"] > 0


def test_fleet_memory_stays_flat(show):
    """Memory guard: per-home marginal footprint must stay small.

    The streaming fold keeps hot state at tens of KB per home; a dict-of-
    dicts regression (or an accidental keep-all trace) shows up as an
    order-of-magnitude jump, far past this ceiling.
    """
    result = bench_fleet(homes=8, days=0.5)
    show(f"fleet marginal: {result['marginal_kb_per_home']:.0f} KB/home")
    assert result["marginal_kb_per_home"] < 1024.0


def test_run_kernel_bench_writes_json(tmp_path, show):
    out = tmp_path / "BENCH_kernel.json"
    results = run_kernel_bench(str(out), quick=True, jobs=2)
    assert out.exists()
    assert results["quick"] is True
    for section in ("scheduler", "network", "combined", "fig1", "fleet",
                    "fleet_city", "sweep"):
        assert section in results
    city = results["fleet_city"]
    show(f"city: {city['homes']} homes / {city['shards']} shards, "
         f"{city['homes_days_per_s']:.2f} home-days/s, "
         f"{city['marginal_kb_per_home']:.0f} KB/home marginal")
    assert city["errors"] == 0
    sweep = results["sweep"]
    show(f"sweep: {sweep['runs']} runs, {sweep['parallel_speedup']:.2f}x "
         f"parallel, warm replay {sweep['cache_warm_fraction']*100:.1f}% of cold")
    assert sweep["digests_match"] is True
    # cache-warm acceptance bar: replay in < 10% of the cold wall-clock
    assert sweep["cache_warm_fraction"] < 0.10

    # every run appends a timestamped line to the perf trajectory
    history = tmp_path / "BENCH_history.jsonl"
    assert history.exists()
    run_kernel_bench(str(out), quick=True, jobs=2, sweep=False)
    lines = history.read_text().splitlines()
    assert len(lines) == 2
    import json

    entry = json.loads(lines[0])
    assert {"timestamp", "git_rev", "scheduler_events_per_s"} <= set(entry)
