"""Kernel throughput microbenchmarks (marked ``perf``; not part of tier-1).

Run explicitly::

    pytest benchmarks/test_kernel_throughput.py -m perf --no-header -q

The numbers printed here are smoke-sized; the authoritative run (with
seed-baseline speedups) is ``python -m repro.eval.cli perf``, which writes
``BENCH_kernel.json``.
"""

from __future__ import annotations

import pytest

from repro.eval.perf import (
    bench_combined,
    bench_fig1,
    bench_network,
    bench_scheduler,
    run_kernel_bench,
)

pytestmark = pytest.mark.perf


def test_scheduler_throughput(show):
    result = bench_scheduler(sim_seconds=50.0)
    show(f"scheduler: {result['events_per_s']:,.0f} events/s")
    # Smoke floor: orders of magnitude below the optimized kernel's rate,
    # only catching a catastrophic regression or a broken bench.
    assert result["events_per_s"] > 100_000


def test_network_throughput(show):
    result = bench_network(messages=20_000)
    show(f"network: {result['messages_per_s']:,.0f} messages/s")
    assert result["messages"] == 20_000
    assert result["messages_per_s"] > 20_000


def test_combined_throughput(show):
    result = bench_combined(sim_seconds=60.0)
    show(f"combined: {result['events_per_s']:,.0f} events/s")
    assert result["events_per_s"] > 100_000


def test_fig1_wall_clock(show):
    result = bench_fig1(days=2.0)
    show(f"fig1 (2 days): {result['wall_clock_s']:.2f}s")
    assert result["wall_clock_s"] < 10.0


def test_run_kernel_bench_writes_json(tmp_path, show):
    out = tmp_path / "BENCH_kernel.json"
    results = run_kernel_bench(str(out), quick=True)
    assert out.exists()
    assert results["quick"] is True
    for section in ("scheduler", "network", "combined", "fig1"):
        assert section in results
