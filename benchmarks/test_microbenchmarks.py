"""Microbenchmarks of the platform's hot paths.

Unlike the figure benchmarks (one timed simulation each), these use
pytest-benchmark's statistical timing: they are the operations the
simulator and the asyncio runtime execute millions of times.
"""

import random

from repro.core.events import Event
from repro.core.intervals import IntervalSet
from repro.core.marzullo import Interval, fuse
from repro.net.message import Message
from repro.net.wire import ProcessIdSet, wire_size
from repro.rt.wire import decode_body, encode_message, split_frame
from repro.sim.scheduler import Scheduler


def test_scheduler_throughput(benchmark):
    def run():
        scheduler = Scheduler()

        def chain(n):
            if n:
                scheduler.call_later(0.001, chain, n - 1)

        for lane in range(20):
            scheduler.call_later(lane * 0.0001, chain, 500)
        scheduler.run()
        return scheduler.processed_events

    processed = benchmark(run)
    assert processed == 20 * 501


def test_wire_size_computation(benchmark):
    event = Event(sensor_id="s", seq=1, emitted_at=0.0, value=0, size_bytes=4)
    ids = ProcessIdSet({f"p{i}" for i in range(5)})
    message = Message(kind="gapless_fwd", src="a", dst="b",
                      payload={"sensor": "s", "event": event, "S": ids, "V": ids})
    size = benchmark(wire_size, message)
    assert size > 100


def test_rt_frame_roundtrip(benchmark):
    event = Event(sensor_id="door", seq=7, emitted_at=1.25, value=True,
                  size_bytes=4, epoch=3)
    message = Message(kind="gapless_fwd", src="a", dst="b",
                      payload={"sensor": "door", "event": event,
                               "S": ProcessIdSet({"a"}),
                               "V": ProcessIdSet({"a", "b", "c"})})

    def roundtrip():
        frame = encode_message(message)
        return decode_body(split_frame(frame)[1])

    decoded = benchmark(roundtrip)
    assert decoded["event"] == event


def test_interval_set_dense_inserts(benchmark):
    rng = random.Random(7)
    values = [rng.randint(0, 5000) for _ in range(2000)]

    def run():
        interval_set = IntervalSet()
        for value in values:
            interval_set.add(value)
        return len(interval_set.ranges())

    ranges = benchmark(run)
    assert ranges >= 1


def test_marzullo_fusion(benchmark):
    rng = random.Random(3)
    intervals = [Interval.around(21.0 + rng.gauss(0, 0.3), 0.5)
                 for _ in range(20)]
    fused = benchmark(fuse, intervals, 6)
    assert fused.contains(21.0) or fused.width >= 0
