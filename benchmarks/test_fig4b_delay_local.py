"""Fig. 4b — delay when the app-bearing process receives directly.

Paper: "the delay incurred is relatively low and is approximately in the
1 to 2 ms range", independent of the number of processes — the Gapless
journal/ring work is off the local delivery path.
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import fig4b_delay_local


def test_fig4b_delay_local(benchmark, show):
    table = run_once(benchmark, fig4b_delay_local, duration=60.0)
    show(table.render())

    for row in table.rows:
        guarantee, size, processes, delay_ms = row
        assert 0.8 <= delay_ms <= 2.2, row

    # Gapless pays no local-delivery premium over Gap.
    for size in (4, 8):
        for n in (2, 5):
            gap = table.cell("delay_ms", guarantee="gap", event_bytes=size,
                             processes=n)
            gapless = table.cell("delay_ms", guarantee="gapless",
                                 event_bytes=size, processes=n)
            assert abs(gapless - gap) < 0.5
