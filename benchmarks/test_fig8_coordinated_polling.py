"""Fig. 8 — normalized polling overhead for four Z-Wave sensors.

Paper: temperature/luminance (600 ms poll, 1.8 s epoch), relative humidity
(4 s, 12 s), UV (5 s, 15 s); three processes. Coordinated polling costs
4-13% over the optimal one-poll-per-epoch; uncoordinated costs 1.5-2.5x
(and proportionally shortens sensor battery life).
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import FIG8_SENSORS, fig8_coordinated_polling


def test_fig8_coordinated_polling(benchmark, show):
    table = run_once(benchmark, fig8_coordinated_polling,
                     seeds=(42, 43, 44), duration=200.0)
    show(table.render())

    ratios = {(row[0], row[1]): row[2] for row in table.rows}
    sensors = [name for name, _kind, _epoch in FIG8_SENSORS]

    for sensor in sensors:
        coordinated = ratios[(sensor, "coordinated")]
        uncoordinated = ratios[(sensor, "uncoordinated")]
        single = ratios[(sensor, "single")]
        # Paper bands.
        assert 1.0 <= coordinated <= 1.18, (sensor, coordinated)
        assert 1.5 <= uncoordinated <= 2.5, (sensor, uncoordinated)
        # Gap's single poller is optimal (but offers no redundancy).
        assert single <= 1.1, (sensor, single)
        # Battery-life argument: uncoordinated polls 1.5-2.5x more.
        assert uncoordinated / coordinated > 1.4

    # Uncoordinated polling also misses epochs (dropped concurrent polls).
    gaps = {(row[0], row[1]): row[3] for row in table.rows}
    assert sum(gaps[(s, "uncoordinated")] for s in sensors) >= 0
