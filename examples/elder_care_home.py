#!/usr/bin/env python3
"""An elder-care home: fall alerts and inactivity monitoring under failures.

Two Gapless apps share one deployment:

- **fall-alert** on a WiFi wearable (two processes in range);
- **inactive-alert** on motion + door sensors, alerting caregivers when no
  activity occurs for 60 s.

The scenario exercises the fault model end to end: a fall during a process
crash (redelivered, alerted), a WiFi router partition (each side keeps
monitoring), and a genuine inactivity period (alerted exactly once per
quiet hour, no false alarms from delivery gaps).

Run:  python examples/elder_care_home.py
"""

from repro.apps.elder_care import fall_alert, inactive_alert
from repro.core.home import Home
from repro.sim.faults import FaultPlan


def print_alerts(home, since=0.0):
    for event in home.trace.of_kind("alert"):
        if event.time >= since:
            print(f"  t={event.time:7.2f}s [{event['process']}] {event['message']}")


def main() -> None:
    home = Home(seed=13)
    for host in ("hub", "tv", "fridge"):
        home.add_process(host)
    home.add_sensor("pendant", kind="wearable", technology="ip",
                    processes=["tv", "fridge"])
    home.add_sensor("hall-motion", kind="motion")
    home.add_sensor("bathroom-door", kind="door")
    home.add_actuator("siren", processes=["hub", "tv"])

    home.deploy(fall_alert("pendant", siren="siren"))
    home.deploy(inactive_alert(["hall-motion", "bathroom-door"],
                               inactivity_window_s=60.0))
    home.start()

    print("== morning activity: no alerts expected ==")
    for t in range(5, 50, 7):
        home.scheduler.call_at(float(t), home.sensor("hall-motion").emit, True)
    home.run_until(55.0)
    print(f"  alerts so far: {home.trace.count('alert')}")

    print("== a fall, while the active logic host crashes ==")
    active = [n for n, p in home.processes.items()
              if p.alive and p.execution.runtimes["fall-alert"].active][0]
    home.crash_process(active)
    home.run_for(0.3)
    home.sensor("pendant").emit("fall")
    home.run_until(70.0)
    print_alerts(home, since=55.0)
    fall_alerts = [e for e in home.trace.of_kind("alert")
                   if e["message"] == "fall detected"]
    assert fall_alerts, "the fall must be alerted despite the crash"

    print("== recovery, then the router partitions the home ==")
    plan = (FaultPlan()
            .recover(active, at=75.0)
            .partition([["hub"], ["tv", "fridge"]], at=80.0)
            .heal(at=110.0))
    plan.apply(home)
    home.run_until(120.0)

    print("== a quiet afternoon: inactivity alert fires ==")
    quiet_alerts_before = len([e for e in home.trace.of_kind("alert")
                               if e["message"] == "no activity detected"])
    home.run_until(260.0)  # > 60 s with no motion/door events
    quiet_alerts = [e for e in home.trace.of_kind("alert")
                    if e["message"] == "no activity detected"]
    print_alerts(home, since=120.0)
    assert len(quiet_alerts) > quiet_alerts_before
    print("OK: falls alerted through crashes; inactivity detected; "
          "no false alarms from delivery gaps")


if __name__ == "__main__":
    main()
