#!/usr/bin/env python3
"""The same platform over real TCP sockets (the paper's Netty runtime).

Spins up three Rivulet processes on localhost ports inside one asyncio
event loop, deploys the door->light app, drives it with software sensor
events, crashes the active node, and shows failover — all over actual
sockets, running the *identical* protocol code the simulator runs.

Run:  python examples/asyncio_localhost.py
"""

import asyncio

from repro.core.delivery import GAPLESS
from repro.core.graph import App
from repro.core.operators import Operator
from repro.core.windows import CountWindow
from repro.rt import LocalCluster


def build_app() -> App:
    logic = Operator(
        "TurnLightOnOff",
        on_window=lambda ctx, c: ctx.actuate("light", "power",
                                             bool(c.all_values()[-1])),
    )
    logic.add_sensor("door", GAPLESS, CountWindow(1))
    logic.add_actuator("light", GAPLESS)
    return App("door-light", logic)


async def main() -> None:
    cluster = LocalCluster()
    for host in ("hub", "tv", "fridge"):
        cluster.add_process(host)
    cluster.add_push_sensor("door", receivers=["tv", "fridge"])
    cluster.add_actuator("light", hosts=["hub"])
    cluster.deploy(build_app())

    async with cluster:
        ports = {name: node.port for name, node in cluster.nodes.items()}
        print(f"== three Rivulet processes listening on {ports} ==")
        await cluster.settle(0.3)

        print("== door opens ==")
        cluster.emit("door", True)
        await cluster.settle(0.4)
        hub = cluster.node("hub")
        print(f"  hub actuations: "
              f"{[(c.action, c.value, c.issued_by) for c in hub.actuations]}")

        active = [n for n, node in cluster.nodes.items()
                  if node.execution.runtimes["door-light"].active][0]
        print(f"== crash the active logic node ({active}) ==")
        await cluster.crash(active)
        await cluster.settle(1.2)  # failure detection over real sockets

        print("== door closes (handled by the promoted node) ==")
        cluster.emit("door", False)
        await cluster.settle(0.4)
        print(f"  hub actuations: "
              f"{[(c.action, c.value, c.issued_by) for c in hub.actuations]}")

        journals = {n: node.store.total_events()
                    for n, node in cluster.nodes.items() if node.alive}
        print(f"== event journals on surviving nodes: {journals} ==")
        assert len(hub.actuations) >= 2
        assert hub.actuations[-1].value is False
        print("OK: real-socket failover complete")


if __name__ == "__main__":
    asyncio.run(main())
