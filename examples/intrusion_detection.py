#!/usr/bin/env python3
"""Intrusion detection (paper Listing 1) under cascading failures.

Three door/window sensors feed an intrusion operator wired with
``FTCombiner(n-1)`` and Gapless delivery. The scenario then gets hostile:

1. a burglar opens a window — alert + siren;
2. two of three sensors die (battery pulled) — the app stays armed;
3. the process hosting the logic node crashes *while* the last sensor
   fires — Gapless redelivers the event to the freshly promoted node and
   the alarm still sounds.

Run:  python examples/intrusion_detection.py
"""

from repro.apps.intrusion import intrusion_detection
from repro.core.home import Home


def alerts(home) -> list[str]:
    return [f"t={e.time:6.2f}s {e['message']} {e.get('doors')}"
            for e in home.trace.of_kind("alert")]


def main() -> None:
    home = Home(seed=7)
    for host in ("hub", "tv", "fridge"):
        home.add_process(host)
    doors = ["front-door", "back-door", "kitchen-window"]
    for door in doors:
        home.add_sensor(door, kind="door")
    home.add_actuator("siren", kind="siren", processes=["hub", "tv"])

    app = intrusion_detection(doors, siren="siren")
    home.deploy(app)
    home.start()
    home.run_for(1.0)

    print("== 1. window opened ==")
    home.sensor("kitchen-window").emit(True)
    home.run_for(2.0)
    print(f"  siren: {'SOUNDING' if home.actuator('siren').state else 'quiet'}")

    print("== 2. two sensors fail; the app tolerates n-1 failures ==")
    home.fail_sensor("front-door")
    home.fail_sensor("kitchen-window")
    home.run_for(2.0)
    home.sensor("back-door").emit(True)
    home.run_for(2.0)

    print("== 3. logic host crashes as the last sensor fires ==")
    active = [n for n, p in home.processes.items()
              if p.alive and p.execution.runtimes[app.name].active][0]
    print(f"  active logic node was on {active}; crashing it")
    home.crash_process(active)
    home.run_for(0.2)           # mid-detection-window
    home.sensor("back-door").emit(True)
    home.run_for(6.0)           # detection + promotion + replay

    print("== alerts raised ==")
    for line in alerts(home):
        print("  " + line)
    assert len(home.trace.of_kind("alert")) >= 3, "all three intrusions alerted"
    print("OK: no intrusion was lost, despite sensor and process failures")


if __name__ == "__main__":
    main()
