#!/usr/bin/env python3
"""Fault-tolerant temperature averaging (paper Listing 2).

Four poll-based Z-Wave temperature sensors, coordinated polling, Marzullo
interval fusion tolerating ``floor((n-1)/3) = 1`` arbitrary sensor failure.
Midway through the run one sensor goes insane and starts reporting 90°C;
the fused average — and therefore the HVAC — never flinches.

Run:  python examples/temperature_hvac.py
"""

from repro.apps.hvac import temperature_hvac
from repro.core.home import Home


def main() -> None:
    home = Home(seed=21)
    for host in ("hub", "tv", "fridge"):
        home.add_process(host)
    sensors = [f"temp-{room}" for room in ("living", "kitchen", "bed", "study")]
    for sensor in sensors:
        home.add_sensor(sensor, kind="temperature")
    home.add_actuator("hvac", kind="hvac")

    app = temperature_hvac(
        sensors, "hvac",
        threshold=23.0, epoch_s=5.0, window_s=5.0, arbitrary_failures=True,
    )
    home.deploy(app)
    home.start()

    print("== phase 1: all sensors healthy (true temperature ~21 C) ==")
    home.run_for(30.0)
    polls = home.trace.count("poll_request")
    epochs = 30.0 / 5.0
    print(f"  coordinated polling issued {polls} polls over "
          f"{epochs * len(sensors):.0f} sensor-epochs "
          f"({polls / (epochs * len(sensors)):.2f}x optimal)")
    print(f"  HVAC cooling: {home.actuator('hvac').state}")

    print("== phase 2: temp-study goes Byzantine, reporting 90 C ==")
    home.sensor("temp-study")._measure = lambda now, rng: 90.0
    home.run_for(60.0)
    cooling_cmds = [r.command.value for r in home.actuator("hvac").history]
    print(f"  cooling commands so far: {set(cooling_cmds) or 'none'}")
    assert True not in cooling_cmds, "Marzullo must mask the Byzantine sensor"

    print("== phase 3: the heat wave is real: all sensors read 26 C ==")
    for sensor in sensors:
        home.sensor(sensor)._measure = lambda now, rng: 26.0 + rng.gauss(0, 0.2)
    home.run_for(30.0)
    print(f"  HVAC cooling: {home.actuator('hvac').state}")
    assert home.actuator("hvac").state is True, "real heat must actuate cooling"
    print("OK: one lying sensor masked; a real temperature change acted on")


if __name__ == "__main__":
    main()
