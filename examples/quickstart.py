#!/usr/bin/env python3
"""Quickstart: the paper's Section 3.2 example — DoorSensor => TurnLightOnOff => LightActuator.

A three-host home (TV, fridge, hub). Only the TV and fridge can hear the
Z-Wave door sensor; only the hub can drive the light. Rivulet places the
active logic node, forwards events with the Gapless guarantee, and survives
crashing whichever process currently runs the app.

Run:  python examples/quickstart.py
"""

from repro.core.delivery import GAPLESS
from repro.core.graph import App
from repro.core.home import Home
from repro.core.operators import Operator
from repro.core.windows import CountWindow


def build_app() -> App:
    """The DS => TL => LA graph of Figure 2."""

    def turn_light_on_off(ctx, combined) -> None:
        door_open = bool(combined.all_values()[-1])
        ctx.actuate("light", "power", door_open)

    logic = Operator("TurnLightOnOff", on_window=turn_light_on_off)
    logic.add_sensor("door", GAPLESS, CountWindow(1))
    logic.add_actuator("light", GAPLESS)
    return App("door-light", logic)


def main() -> None:
    home = Home(seed=42)
    home.add_process("hub", adapters=("zwave", "ip"))
    home.add_process("tv", adapters=("zwave", "ip"))
    home.add_process("fridge", adapters=("zwave", "ip"))
    # The door sensor is out of the hub's radio range.
    home.add_sensor("door", kind="door", processes=["tv", "fridge"])
    home.add_actuator("light", processes=["hub"])
    home.deploy(build_app())
    home.start()

    door = home.sensor("door")
    light = home.actuator("light")

    print("== failure-free operation ==")
    home.run_for(1.0)
    door.emit(True)   # door opens
    home.run_for(1.0)
    print(f"  door opened  -> light is {'ON' if light.state else 'off'}")
    door.emit(False)  # door closes
    home.run_for(1.0)
    print(f"  door closed  -> light is {'ON' if light.state else 'off'}")

    active = [name for name, p in home.processes.items()
              if p.execution.runtimes["door-light"].active]
    print(f"  active logic node runs on: {active[0]}")

    print("== crash the app-bearing process ==")
    home.crash_process(active[0])
    home.run_for(3.0)  # > 2 s failure-detection threshold
    new_active = [name for name, p in home.processes.items()
                  if p.alive and p.execution.runtimes["door-light"].active]
    print(f"  {active[0]} crashed; promoted: {new_active[0]}")

    door.emit(True)
    home.run_for(1.0)
    print(f"  door opened  -> light is {'ON' if light.state else 'off'}")

    deliveries = home.trace.count("logic_delivery")
    print(f"== done: {door.events_emitted} events emitted, "
          f"{deliveries} logic deliveries, light history: "
          f"{[r.command.value for r in light.history]} ==")
    assert light.state is True


if __name__ == "__main__":
    main()
