#!/usr/bin/env python3
"""A whole smart home on a floor plan, running four apps through a bad day.

Demonstrates the full surface of the library in one script:

- a **floor plan** with walls: radio reachability and per-link loss come
  from geometry, not configuration;
- four concurrent applications from the Table 1 catalog (lighting,
  intrusion detection, energy billing, temperature HVAC) with mixed
  Gap/Gapless guarantees;
- a declarative :class:`FaultPlan`: a process crash, a router partition,
  and a sensor battery death, all while the apps keep running;
- a closing report of what the platform delivered.

Run:  python examples/whole_home_tour.py
"""

from repro.apps.energy import energy_billing
from repro.apps.hvac import temperature_hvac
from repro.apps.intrusion import intrusion_detection
from repro.apps.lighting import automated_lighting
from repro.core.home import Home
from repro.sim.faults import FaultPlan

DAY = 300.0  # a compressed "day" of simulated seconds


def build_home() -> Home:
    home = Home(seed=99)
    # Hosts along a 20m x 10m floor plan; a concrete wall shields the hub.
    home.add_process("hub", position=(1.0, 1.0))
    home.add_process("tv", position=(10.0, 5.0))
    home.add_process("fridge", position=(18.0, 8.0))
    home.topology.add_wall(4.0, 0.0, 4.0, 10.0, loss_factor=12.0)

    home.add_sensor("front-door", kind="door", position=(9.0, 0.5))
    home.add_sensor("patio-door", kind="door", position=(19.0, 2.0))
    home.add_sensor("hall-motion", kind="motion", position=(8.0, 4.0))
    home.add_sensor("meter", kind="energy", position=(2.0, 9.0))
    for index, room in enumerate(("living", "kitchen", "bedroom")):
        home.add_sensor(f"temp-{room}", kind="temperature",
                        position=(5.0 + 5 * index, 6.0))
    home.add_actuator("lights", position=(10.0, 6.0))
    home.add_actuator("siren", position=(9.0, 1.0))
    home.add_actuator("hvac", kind="hvac", position=(2.0, 5.0))

    home.deploy(automated_lighting(["hall-motion"], "lights",
                                   check_interval_s=10.0))
    home.deploy(intrusion_detection(["front-door", "patio-door"],
                                    siren="siren", name="intrusion"))
    billing_app, billing = energy_billing("meter", report_interval_s=120.0)
    home.deploy(billing_app)
    home.deploy(temperature_hvac(
        [f"temp-{room}" for room in ("living", "kitchen", "bedroom")],
        "hvac", threshold=23.0, epoch_s=10.0, window_s=10.0,
        arbitrary_failures=False,
    ))
    home.billing = billing  # stash for the report
    return home


def schedule_day(home: Home) -> None:
    motion = home.sensor("hall-motion")
    meter = home.sensor("meter")
    front = home.sensor("front-door")
    for t in range(10, int(DAY), 15):
        home.scheduler.call_at(float(t), motion.emit, True)
    for t in range(5, int(DAY), 10):
        home.scheduler.call_at(float(t), meter.emit, 12.5)  # Wh per tick
    home.scheduler.call_at(140.0, front.emit, True)  # someone breaks in


def main() -> None:
    home = build_home()
    faults = (FaultPlan()
              .crash("tv", at=60.0)
              .recover("tv", at=100.0)
              .partition([["hub"], ["tv", "fridge"]], at=180.0)
              .heal(at=220.0)
              .fail_sensor("temp-bedroom", at=240.0))
    home.start()
    faults.apply(home)
    schedule_day(home)

    print("== running one compressed day with crashes, a partition, and a "
          "dying sensor ==")
    home.run_until(DAY)

    links = {s: home.radio.reachable_processes(s) for s in home.sensor_names}
    print("== radio reachability from the floor plan ==")
    for sensor, hosts in sorted(links.items()):
        print(f"  {sensor:13s} -> {hosts}")

    print("== what the platform delivered ==")
    print(f"  logic deliveries: {home.trace.count('logic_delivery')}")
    print(f"  promotions/demotions: {home.trace.count('promotion')}/"
          f"{home.trace.count('demotion')}")
    alerts = [(round(e.time, 1), e['message']) for e in home.trace.of_kind('alert')]
    print(f"  alerts: {alerts}")
    print(f"  lights state: {home.actuator('lights').state}; "
          f"siren: {home.actuator('siren').state}")
    print(f"  energy billed: {home.billing.total_kwh:.3f} kWh = "
          f"${home.billing.total_cost:.4f} "
          f"({home.billing.events_counted} meter events)")

    assert any(m == "intrusion detected" for _, m in alerts)
    assert home.billing.events_counted == 30  # every meter event billed once
    assert home.trace.count("operator_error") == 0
    print("OK: four apps, one bad day, zero operator errors")


if __name__ == "__main__":
    main()
