#!/usr/bin/env python3
"""A stateful app on the replicated store: PreHeat-style occupancy learning.

The paper keeps logic nodes stateless and says stateful applications should
"use existing distributed storage systems to replicate state"
(Section 3.2). This example does exactly that: an occupancy-prediction
thermostat (in the spirit of PreHeat [58]) learns an hourly occupancy
histogram through ``ctx.state`` — the home-wide replicated key-value store
— so the learned model survives the crash of whichever process happens to
host the logic node.

Run:  python examples/stateful_preheat.py
"""

from repro.core.delivery import GAP
from repro.core.graph import App
from repro.core.home import Home, HomeConfig
from repro.core.operators import Operator
from repro.core.windows import CountWindow

HOUR = 60.0  # one "hour" of simulated seconds, to keep the run short


def preheat_app() -> App:
    """Learn P(occupied | hour) and pre-heat when the next hour looks busy."""

    def on_window(ctx, combined) -> None:
        for event in combined.all_events():
            hour = int(event.emitted_at // HOUR) % 24
            seen = ctx.state.get(f"obs:{hour}", 0) + 1
            occupied = ctx.state.get(f"occ:{hour}", 0) + (1 if event.value else 0)
            ctx.state.put(f"obs:{hour}", seen)
            ctx.state.put(f"occ:{hour}", occupied)
            next_hour = (hour + 1) % 24
            next_obs = ctx.state.get(f"obs:{next_hour}", 0)
            next_occ = ctx.state.get(f"occ:{next_hour}", 0)
            if next_obs >= 3 and next_occ / next_obs > 0.5:
                ctx.actuate("hvac", "set_point", 21.5)
            else:
                ctx.actuate("hvac", "set_point", 17.0)

    operator = Operator("PreHeat", on_window=on_window)
    operator.add_sensor("occupancy", GAP, CountWindow(1))
    operator.add_actuator("hvac", GAP)
    return App("preheat", operator)


def main() -> None:
    home = Home(HomeConfig(seed=3, kv_sync_interval=5.0))
    home.add_process("hub", compute=1.0)
    home.add_process("tv", compute=4.0)       # beefier: wins placement ties
    home.add_process("fridge", compute=2.0)
    home.add_sensor("occupancy", kind="occupancy")
    home.add_actuator("hvac", kind="hvac")
    home.deploy(preheat_app())
    home.start()

    occupancy = home.sensor("occupancy")
    # Days of routine: home during "hours" 18-22, away during 8-17.
    for day in range(4):
        for hour in range(24):
            at = (day * 24 + hour) * HOUR + 10.0
            occupied = 18 <= hour <= 22 or hour <= 6
            home.scheduler.call_at(at, occupancy.emit, occupied)

    print("== learning for two days ==")
    home.run_until(2 * 24 * HOUR)
    active = [n for n, p in home.processes.items()
              if p.execution.runtimes["preheat"].active][0]
    model_on_hub = {k: home.processes["hub"].kv.get(k)
                    for k in ("obs:18", "occ:18", "obs:10", "occ:10")}
    print(f"  active logic node: {active}")
    print(f"  learned model as replicated on hub: {model_on_hub}")

    print(f"== crash {active}: the model must survive ==")
    home.crash_process(active)
    home.run_until(2 * 24 * HOUR + 30.0)
    survivor = [n for n, p in home.processes.items()
                if p.alive and p.execution.runtimes["preheat"].active][0]
    print(f"  promoted: {survivor}")
    print("== two more days on the survivor ==")
    home.run_until(4 * 24 * HOUR)

    store = home.processes[survivor].kv
    evening = store.get("obs:18", 0)
    print(f"  hour-18 observations across the crash: {evening} (expect 4)")
    assert evening == 4, "the learned model must accumulate across failover"
    # The thermostat pre-heats before the evening and relaxes before the
    # empty morning hours.
    setpoints = [(r.time, r.command.value)
                 for r in home.actuator("hvac").history]
    last_day = [v for t, v in setpoints if t > 3 * 24 * HOUR]
    assert 21.5 in last_day and 17.0 in last_day
    print(f"  day-4 set-points used: {sorted(set(last_day))}")
    print("OK: a stateful app, its state replicated, surviving failover")


if __name__ == "__main__":
    main()
