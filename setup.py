"""Setuptools shim for environments without wheel/PEP 660 support."""

from setuptools import setup

setup()
